"""Sim-time-native time-series telemetry store.

Counters, gauges, and latency histograms are recorded continuously into
fixed-width sim-time buckets.  Retention is a ring per tier: when tier 0
(finest) exceeds its bucket budget, the oldest bucket is downsampled
into tier 1 (bucket width doubles per tier), and so on — long runs stay
bounded while recent history keeps full resolution.

Latency distributions use log-bucketed histograms (8 buckets per octave,
~9.05% relative bucket width).  Bucket counts are plain integers keyed
by the bucket index, so two histograms merge by adding counts — the
merged quantiles are *identical* whether 200 per-server histograms are
merged pairwise, in any order, or all the values were recorded into one
combined histogram.  No re-sampling, no merge-order dependence.

Recording is zero-event bookkeeping: nothing here schedules simulator
events, charges CPU, or moves wire bytes.  The golden experiment tables
are bit-for-bit unaffected by the plane being enabled.

Everything outside ``repro.obs`` goes through the ``TimeSeriesRegistry``
facade (boundary lint #7); ``LogHistogram``/``TimeSeries`` are internal.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "LogHistogram",
    "TimeSeries",
    "TimeSeriesRegistry",
    "to_chrome_counters",
]

# 8 histogram buckets per octave: bucket upper/lower ratio is 2^(1/8),
# so any quantile read off a bucket boundary is within ~9.05% of the
# exact value — inside the 10% recovery tolerance E13 asserts.
BUCKETS_PER_OCTAVE = 8
_INV_LOG_GROWTH = BUCKETS_PER_OCTAVE / math.log(2.0)
_GROWTH = 2.0 ** (1.0 / BUCKETS_PER_OCTAVE)

DEFAULT_BUCKET_WIDTH = 0.25  # sim-seconds per tier-0 bucket
DEFAULT_MAX_BUCKETS = 256  # ring budget per tier
DEFAULT_TIERS = 4  # tier t bucket width = width * 2**t

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"
_KINDS = (COUNTER, GAUGE, HISTOGRAM)


class LogHistogram:
    """Mergeable log-bucketed histogram with exact aggregate moments.

    ``count``/``total``/``minimum``/``maximum`` are exact; quantiles are
    read from the log-bucket boundaries (clamped to the exact extrema).
    Values ``<= 0`` land in a dedicated zero bucket.  Each bucket can
    carry one exemplar (e.g. a span id); merge keeps the max exemplar so
    the result is independent of merge order.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "zero", "buckets",
                 "exemplars")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.zero = 0
        self.buckets: Dict[int, int] = {}
        self.exemplars: Dict[int, Any] = {}

    @staticmethod
    def bucket_index(value: float) -> Optional[int]:
        """Log-bucket index for ``value``; None for the zero bucket."""
        if value <= 0.0:
            return None
        return math.floor(math.log(value) * _INV_LOG_GROWTH)

    @staticmethod
    def bucket_upper(index: int) -> float:
        """Exclusive upper bound of bucket ``index``."""
        return _GROWTH ** (index + 1)

    def add(self, value: float, exemplar: Any = None) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        index = self.bucket_index(value)
        if index is None:
            self.zero += 1
            return
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if exemplar is not None:
            prior = self.exemplars.get(index)
            if prior is None or exemplar > prior:
                self.exemplars[index] = exemplar

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into self; commutative and associative."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        self.zero += other.zero
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        for index, exemplar in other.exemplars.items():
            prior = self.exemplars.get(index)
            if prior is None or exemplar > prior:
                self.exemplars[index] = exemplar
        return self

    def copy(self) -> "LogHistogram":
        out = LogHistogram()
        out.merge(self)
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], from bucket boundaries.

        Edge cases are pinned (tests/obs/test_accounting.py relies on
        them): an **empty** histogram returns ``0.0`` — never None, so
        rollup arithmetic needs no guards — and a **single** observation
        is returned exactly for every ``q`` (including ``q=0``), because
        the min/max clamp collapses its bucket's boundary to the lone
        value.
        """
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.zero:
            return min(self.maximum, 0.0)
        seen = self.zero
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                upper = self.bucket_upper(index)
                return max(self.minimum, min(upper, self.maximum))
        return self.maximum

    def cumulative(self) -> List[Tuple[float, int]]:
        """Ascending ``(upper_bound, cumulative_count)`` pairs.

        The final pair is ``(inf, count)`` — the shape Prometheus
        ``_bucket{le=...}`` exposition wants.
        """
        out: List[Tuple[float, int]] = []
        seen = self.zero
        if self.zero:
            out.append((0.0, seen))
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            out.append((self.bucket_upper(index), seen))
        out.append((math.inf, self.count))
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
            "zero": self.zero,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "exemplars": {str(k): v
                          for k, v in sorted(self.exemplars.items())},
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "LogHistogram":
        out = cls()
        out.count = int(doc["count"])
        out.total = float(doc["total"])
        out.minimum = math.inf if doc["min"] is None else float(doc["min"])
        out.maximum = -math.inf if doc["max"] is None else float(doc["max"])
        out.zero = int(doc["zero"])
        out.buckets = {int(k): int(v) for k, v in doc["buckets"].items()}
        out.exemplars = {int(k): v for k, v in doc["exemplars"].items()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"LogHistogram(count={self.count}, mean={self.mean:.6g}, "
                f"buckets={len(self.buckets)})")


class TimeSeries:
    """One named metric stream bucketed by sim time.

    ``tiers[t]`` maps ``bucket_index -> value`` where the bucket covers
    ``[index * width * 2**t, (index + 1) * width * 2**t)``.  New points
    land in tier 0; when a tier exceeds ``max_buckets`` its oldest
    bucket is folded into the parent bucket (``index // 2``) one tier
    up, so tiers never overlap in time and a range query is just the
    concatenation of every tier's in-range buckets.
    """

    __slots__ = ("name", "kind", "width", "max_buckets", "tiers", "points")

    def __init__(self, name: str, kind: str, *,
                 width: float = DEFAULT_BUCKET_WIDTH,
                 max_buckets: int = DEFAULT_MAX_BUCKETS,
                 n_tiers: int = DEFAULT_TIERS) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown series kind: {kind!r}")
        self.name = name
        self.kind = kind
        self.width = float(width)
        self.max_buckets = int(max_buckets)
        self.tiers: List[Dict[int, Any]] = [{} for _ in range(n_tiers)]
        self.points = 0  # observations recorded (not buckets retained)

    # -- recording ---------------------------------------------------

    def _tier0(self, now: float) -> int:
        return int(now // self.width)

    def inc(self, now: float, n: float = 1.0) -> None:
        tier = self.tiers[0]
        index = int(now // self.width)
        tier[index] = tier.get(index, 0.0) + n
        self.points += 1
        if len(tier) > self.max_buckets:
            self._evict(0)

    def set(self, now: float, value: float) -> None:
        tier = self.tiers[0]
        index = int(now // self.width)
        tier[index] = value
        self.points += 1
        if len(tier) > self.max_buckets:
            self._evict(0)

    def observe(self, now: float, value: float, exemplar: Any = None) -> None:
        tier = self.tiers[0]
        index = int(now // self.width)
        hist = tier.get(index)
        if hist is None:
            hist = tier[index] = LogHistogram()
            if len(tier) > self.max_buckets:
                self._evict(0)
        hist.add(value, exemplar)
        self.points += 1

    def _evict(self, t: int) -> None:
        """Downsample the oldest bucket of tier ``t`` into tier ``t+1``."""
        tier = self.tiers[t]
        while len(tier) > self.max_buckets:
            oldest = min(tier)
            value = tier.pop(oldest)
            if t + 1 >= len(self.tiers):
                continue  # beyond the coarsest tier: drop
            parent = self.tiers[t + 1]
            pidx = oldest // 2
            if self.kind == COUNTER:
                parent[pidx] = parent.get(pidx, 0.0) + value
            elif self.kind == GAUGE:
                # evicting in ascending order, the later child wins
                parent[pidx] = value
            else:
                prior = parent.get(pidx)
                if prior is None:
                    parent[pidx] = value
                else:
                    prior.merge(value)
            if len(parent) > self.max_buckets:
                self._evict(t + 1)

    # -- querying ----------------------------------------------------

    def buckets_between(self, start: float,
                        end: float) -> List[Tuple[float, float, Any]]:
        """``(bucket_start, bucket_width, value)`` overlapping [start, end).

        Sorted by bucket start; tiers are disjoint by construction.
        """
        out: List[Tuple[float, float, Any]] = []
        for t, tier in enumerate(self.tiers):
            w = self.width * (1 << t)
            for index, value in tier.items():
                t0 = index * w
                if t0 < end and t0 + w > start:
                    out.append((t0, w, value))
        out.sort(key=lambda item: item[0])
        return out

    def window_sum(self, cutoff: float) -> float:
        """Sum of counter buckets whose start lies strictly after ``cutoff``.

        This is the SLO engine's window rule: with observations recorded
        at bucket-aligned times, "bucket start > cutoff" is exactly
        "observation time > cutoff" (see repro.health.slo).
        """
        total = 0.0
        for t, tier in enumerate(self.tiers):
            w = self.width * (1 << t)
            for index, value in tier.items():
                if index * w > cutoff:
                    total += value
        return total

    def merged_histogram(self, start: float, end: float) -> LogHistogram:
        merged = LogHistogram()
        for _, _, value in self.buckets_between(start, end):
            merged.merge(value)
        return merged

    def latest(self) -> Optional[Tuple[float, Any]]:
        """``(bucket_start, value)`` of the most recent bucket, if any."""
        best: Optional[Tuple[float, Any]] = None
        for t, tier in enumerate(self.tiers):
            if not tier:
                continue
            w = self.width * (1 << t)
            index = max(tier)
            t0 = index * w
            if best is None or t0 > best[0]:
                best = (t0, tier[index])
        return best

    # -- merge / serialization ---------------------------------------

    def merge_from(self, other: "TimeSeries") -> "TimeSeries":
        """Fold another server's series in, bucket by bucket.

        Counters and gauges add (a fleet-level gauge is the sum of the
        per-server gauges); histograms merge exactly.
        """
        if other.kind != self.kind or other.width != self.width:
            raise ValueError(
                f"cannot merge series {other.name!r} ({other.kind}, "
                f"width={other.width}) into {self.name!r} "
                f"({self.kind}, width={self.width})")
        self.points += other.points
        for t, tier in enumerate(other.tiers):
            if t >= len(self.tiers):
                self.tiers.append({})
            mine = self.tiers[t]
            for index, value in tier.items():
                prior = mine.get(index)
                if self.kind == HISTOGRAM:
                    if prior is None:
                        mine[index] = value.copy()
                    else:
                        prior.merge(value)
                elif prior is None:
                    mine[index] = value
                else:
                    mine[index] = prior + value
        return self

    def to_dict(self) -> Dict[str, Any]:
        tiers: List[Dict[str, Any]] = []
        for tier in self.tiers:
            if self.kind == HISTOGRAM:
                tiers.append({str(k): v.to_dict()
                              for k, v in sorted(tier.items())})
            else:
                tiers.append({str(k): v for k, v in sorted(tier.items())})
        return {"name": self.name, "kind": self.kind, "width": self.width,
                "max_buckets": self.max_buckets, "points": self.points,
                "tiers": tiers}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TimeSeries":
        out = cls(doc["name"], doc["kind"], width=doc["width"],
                  max_buckets=doc["max_buckets"],
                  n_tiers=max(1, len(doc["tiers"])))
        out.points = int(doc["points"])
        for t, tier in enumerate(doc["tiers"]):
            if out.kind == HISTOGRAM:
                out.tiers[t] = {int(k): LogHistogram.from_dict(v)
                                for k, v in tier.items()}
            else:
                out.tiers[t] = {int(k): v for k, v in tier.items()}
        return out


class TimeSeriesRegistry:
    """Facade over a set of named series sharing one sim clock.

    This is the only type the rest of the tree may name (boundary lint
    #7): emitters call ``inc``/``set_gauge``/``observe`` and readers use
    ``query``/``merged``/``to_dict``.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None, *,
                 bucket_width: float = DEFAULT_BUCKET_WIDTH,
                 max_buckets: int = DEFAULT_MAX_BUCKETS,
                 n_tiers: int = DEFAULT_TIERS) -> None:
        self._clock = clock or (lambda: 0.0)
        self.bucket_width = float(bucket_width)
        self.max_buckets = int(max_buckets)
        self.n_tiers = int(n_tiers)
        self._series: Dict[str, TimeSeries] = {}

    # -- series management -------------------------------------------

    def _get(self, name: str, kind: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(
                name, kind, width=self.bucket_width,
                max_buckets=self.max_buckets, n_tiers=self.n_tiers)
        elif series.kind != kind:
            raise ValueError(
                f"series {name!r} is a {series.kind}, not a {kind}")
        return series

    def names(self) -> List[str]:
        return sorted(self._series)

    def series(self, name: str) -> Optional[TimeSeries]:
        return self._series.get(name)

    def kind(self, name: str) -> Optional[str]:
        series = self._series.get(name)
        return series.kind if series is not None else None

    # -- recording ---------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        self._get(name, COUNTER).inc(self._clock(), n)

    def set_gauge(self, name: str, value: float) -> None:
        self._get(name, GAUGE).set(self._clock(), value)

    def observe(self, name: str, value: float, exemplar: Any = None) -> None:
        self._get(name, HISTOGRAM).observe(self._clock(), value, exemplar)

    # -- querying ----------------------------------------------------

    def _range(self, start: Optional[float],
               end: Optional[float]) -> Tuple[float, float]:
        if end is None:
            # past the newest bucket edge so in-progress buckets count
            end = self._clock() + self.bucket_width
        if start is None:
            start = -math.inf
        return start, end

    def query(self, name: str, fn: str = "points", *,
              start: Optional[float] = None, end: Optional[float] = None,
              q: float = 0.99) -> Any:
        """Range/instant query over one series.

        ``fn`` is one of:

        - ``points``: list of per-bucket dicts (counters/gauges carry
          ``value``; histograms carry count/mean/quantile/max).
        - ``sum``: total over the range (counter buckets add; histogram
          buckets contribute their counts).
        - ``rate``: ``sum`` divided by the queried span.
        - ``quantile``: quantile ``q`` of the merged histogram.
        - ``instant``: the newest bucket (value, or quantile ``q``).
        """
        series = self._series.get(name)
        if series is None:
            raise KeyError(name)
        start, end = self._range(start, end)
        if fn == "points":
            out = []
            for t0, w, value in series.buckets_between(start, end):
                if series.kind == HISTOGRAM:
                    out.append({"t": t0, "width": w, "count": value.count,
                                "mean": value.mean,
                                "q": value.quantile(q), "max": value.maximum})
                else:
                    out.append({"t": t0, "width": w, "value": value})
            return out
        if fn == "sum":
            total = 0.0
            for _, _, value in series.buckets_between(start, end):
                total += value.count if series.kind == HISTOGRAM else value
            return total
        if fn == "rate":
            span = end - start
            if not math.isfinite(span) or span <= 0:
                return 0.0
            return self.query(name, "sum", start=start, end=end) / span
        if fn == "quantile":
            if series.kind != HISTOGRAM:
                raise ValueError(f"series {name!r} is not a histogram")
            return series.merged_histogram(start, end).quantile(q)
        if fn == "instant":
            latest = series.latest()
            if latest is None:
                return None
            value = latest[1]
            return value.quantile(q) if series.kind == HISTOGRAM else value
        raise ValueError(f"unknown query fn: {fn!r}")

    def window_sum(self, name: str, cutoff: float) -> float:
        """Counter sum over buckets starting strictly after ``cutoff``."""
        series = self._series.get(name)
        if series is None:
            return 0.0
        return series.window_sum(cutoff)

    def histogram_summary(self, name: str, *, start: Optional[float] = None,
                          end: Optional[float] = None) -> Dict[str, float]:
        series = self._series.get(name)
        if series is None or series.kind != HISTOGRAM:
            raise KeyError(name)
        s, e = self._range(start, end)
        merged = series.merged_histogram(s, e)
        return {
            "count": merged.count,
            "mean": merged.mean,
            "p50": merged.quantile(0.50),
            "p90": merged.quantile(0.90),
            "p99": merged.quantile(0.99),
            "max": merged.maximum if merged.count else 0.0,
        }

    def histogram_cumulative(self, name: str, *,
                             start: Optional[float] = None,
                             end: Optional[float] = None,
                             ) -> Tuple[List[Tuple[float, int]], float, int]:
        """``(le_pairs, sum, count)`` for Prometheus exposition."""
        series = self._series.get(name)
        if series is None or series.kind != HISTOGRAM:
            raise KeyError(name)
        s, e = self._range(start, end)
        merged = series.merged_histogram(s, e)
        return merged.cumulative(), merged.total, merged.count

    def histogram_exemplars(self, name: str, *, start: Optional[float] = None,
                            end: Optional[float] = None) -> List[Any]:
        """Exemplars (e.g. span ids) attached to buckets in the range."""
        series = self._series.get(name)
        if series is None or series.kind != HISTOGRAM:
            return []
        s, e = self._range(start, end)
        merged = series.merged_histogram(s, e)
        return [merged.exemplars[k] for k in sorted(merged.exemplars)]

    # -- fleet aggregation -------------------------------------------

    def merge_from(self, other: "TimeSeriesRegistry") -> "TimeSeriesRegistry":
        for name, series in other._series.items():
            mine = self._series.get(name)
            if mine is None:
                self._series[name] = TimeSeries.from_dict(series.to_dict())
            else:
                mine.merge_from(series)
        return self

    @classmethod
    def merged(cls, registries: Iterable["TimeSeriesRegistry"],
               clock: Optional[Callable[[], float]] = None,
               ) -> "TimeSeriesRegistry":
        """Fleet-wide registry: per-bucket sums, exact histogram merges."""
        registries = list(registries)
        if clock is None and registries:
            clock = registries[0]._clock
        out = cls(clock)
        for registry in registries:
            out.merge_from(registry)
        return out

    # -- snapshot / serialization ------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Cheap MetricsRegistry-compatible summary (no bucket dump)."""
        return {
            "series": len(self._series),
            "points": sum(s.points for s in self._series.values()),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "bucket_width": self.bucket_width,
            "time": self._clock(),
            "series": [self._series[name].to_dict()
                       for name in sorted(self._series)],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TimeSeriesRegistry":
        frozen = float(doc.get("time", 0.0))
        out = cls(clock=lambda: frozen,
                  bucket_width=doc.get("bucket_width", DEFAULT_BUCKET_WIDTH))
        for series_doc in doc["series"]:
            series = TimeSeries.from_dict(series_doc)
            out._series[series.name] = series
        return out


def to_chrome_counters(registry: TimeSeriesRegistry, *,
                       scale: float = 1e6) -> List[Dict[str, Any]]:
    """Chrome trace-event counter tracks (``ph: "C"``) for every series.

    Load the output next to the PR 4 span export in ``chrome://tracing``
    / Perfetto; ``scale`` converts sim-seconds to microseconds.
    """
    events: List[Dict[str, Any]] = []
    for name in registry.names():
        series = registry.series(name)
        for t0, _, value in series.buckets_between(-math.inf, math.inf):
            if series.kind == HISTOGRAM:
                args = {"count": value.count,
                        "p99": value.quantile(0.99)}
            else:
                args = {"value": value}
            events.append({"name": name, "ph": "C", "pid": 1, "tid": 1,
                           "ts": t0 * scale, "args": args})
    return events
