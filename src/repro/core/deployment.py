"""Scenario assembly: whole collaboratory networks in a few calls.

Reproduces the paper's deployment shape (§6.1): one or more collaboratory
domains (Rutgers / UT-Austin / Caltech), each a campus LAN with a DISCOVER
server, application hosts, and client hosts; servers meshed by WAN links; a
registry host running the naming + trader services the servers bootstrap
through (§5.2.1).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.client import DiscoverPortal
from repro.core.server import DiscoverServer
from repro.net import Network, build_multi_domain
from repro.net.costs import CostModel, LinkSpec
from repro.net.topology import Domain
from repro.obs import MetricsRegistry, Tracer
from repro.orb import NamingService, Orb, TraderService
from repro.sim import Simulator
from repro.steering.application import AppConfig, SteerableApplication


def reset_runtime_ids() -> None:
    """Re-seed the module-global id counters used across the runtime.

    Message ids, session ids, ports, and similar identifiers ride the
    wire as strings, so a deployment's encoded byte totals depend on how
    many digits these process-global counters have grown to.  Without a
    reset, two identical drills run back-to-back in one process charge
    slightly different ``wan_bytes`` into the cost ledger — breaking the
    bit-for-bit determinism E13/E14 assert.  The determinism-checked
    drills (``build_fleet``, ``run_telemetry_drill``) re-seed before
    building; within a single deployment the counters still advance
    normally, so uniqueness is untouched.  ``build_collaboratory`` itself
    does *not* reset: the pre-pipeline golden seed
    (tests/pipeline/golden_seed.json) was captured with scenarios run
    back-to-back in one process, so its E4 byte totals bake in the
    counter state E1/E2 left behind.
    """
    from repro.net import network as _network
    from repro.orb import adapter as _adapter
    from repro.orb import trader as _trader
    from repro.sim import process as _process
    from repro.steering import application as _application
    from repro.web import client as _webclient
    from repro.web import http as _http
    from repro.web import session as _websession
    from repro.wire import messages as _messages

    from repro.core import services as _services

    _network._frame_ids = itertools.count(1)
    _adapter._auto_keys = itertools.count(1)
    _trader._offer_seq = itertools.count(1)
    _process._ids = itertools.count(1)
    _application._app_ports = itertools.count(20000)
    _webclient._client_ports = itertools.count(40000)
    _http._request_ids = itertools.count(1)
    _websession._session_seq = itertools.count(1)
    _messages._msg_ids = itertools.count(1)
    _services._job_seq = itertools.count(1)


class Collaboratory:
    """A fully wired multi-domain DISCOVER deployment."""

    def __init__(self, sim: Simulator, net: Network, domains: List[Domain],
                 servers: Dict[str, DiscoverServer], registry_orb: Orb,
                 naming: NamingService, trader: TraderService,
                 tracer: Optional[Tracer] = None) -> None:
        self.sim = sim
        self.net = net
        self.domains = domains
        self.servers = servers
        self.registry_orb = registry_orb
        self.naming = naming
        self.trader = trader
        #: the deployment-wide tracer shared by every server, portal, and
        #: the network — one trace id space, so cross-server trees join up
        self.tracer = tracer if tracer is not None else Tracer(sim)
        self.apps: List[SteerableApplication] = []
        self.portals: List[DiscoverPortal] = []
        #: the optional §6.3 directory, deployed as a sharded
        #: :class:`repro.directory.DirectoryPlane` (set by
        #: build_collaboratory when ``use_directory=True``)
        self.directory = None
        #: registry references (set by build_collaboratory)
        self.naming_ref = None
        self.trader_ref = None
        #: the deployment-wide RequestCostLedger shared by every server
        #: and the network (set by build_collaboratory; falls back to the
        #: first server's own ledger otherwise)
        self.ledger = (next(iter(servers.values())).ledger
                       if servers else None)
        #: server name → its durable storage backend (set by
        #: build_collaboratory) — the medium a crash does not erase,
        #: handed back to the replacement server in :meth:`restart_server`
        self.storage: Dict[str, object] = {}
        #: server name → the DiscoverServer kwargs it was built with
        #: (minus the backend), so a restart reconstructs an identical
        #: server on the same host
        self._server_kwargs: Dict[str, dict] = {}
        self._app_host_rr = {d.name: itertools.cycle(d.app_hosts or
                                                     [d.server])
                             for d in domains}
        self._client_host_rr = {d.name: itertools.cycle(d.client_hosts or
                                                        [d.server])
                                for d in domains}

    # -- population ----------------------------------------------------------
    def server_of(self, domain_index: int) -> DiscoverServer:
        return self.servers[self.domains[domain_index].server.name]

    def add_app(self, domain_index: int,
                factory: Callable[..., SteerableApplication], name: str,
                acl: Optional[dict] = None,
                config: Optional[AppConfig] = None,
                start: bool = True,
                **kwargs) -> SteerableApplication:
        """Create an application on the next app host of a domain.

        ``factory`` is a :class:`SteerableApplication` subclass (or any
        callable with the same signature).
        """
        domain = self.domains[domain_index]
        host = next(self._app_host_rr[domain.name])
        app = factory(host, name, domain.server.name,
                      acl=acl or {}, config=config, **kwargs)
        self.apps.append(app)
        if start:
            app.start()
        return app

    def add_portal(self, domain_index: int) -> DiscoverPortal:
        """Create a portal on the next client host of a domain."""
        domain = self.domains[domain_index]
        host = next(self._client_host_rr[domain.name])
        portal = DiscoverPortal(host, domain.server.name,
                                tracer=self.tracer)
        self.portals.append(portal)
        return portal

    # -- observability --------------------------------------------------------
    def metrics_registry(self) -> MetricsRegistry:
        """One snapshot surface over every collector in the deployment:
        per-server pipeline + federation metrics, the network's traffic
        trace, and the span store."""
        registry = MetricsRegistry()
        for name in sorted(self.servers):
            server = self.servers[name]
            registry.register(f"pipeline[{name}]", server.pipeline_metrics)
            registry.register(f"federation[{name}]",
                              server.federation_metrics)
            registry.register(f"directory[{name}]",
                              server.directory_metrics)
            registry.register(f"storage[{name}]", server.storage_metrics)
            registry.register(f"health[{name}]", server.health)
            registry.register(f"log[{name}]", server.log)
            registry.register(f"timeseries[{name}]", server.timeseries)
        if self.directory is not None:
            registry.register("directory_plane", self.directory)
        registry.register("traffic", self.net.trace)
        registry.register("spans", self.tracer)
        if self.ledger is not None:
            # deployment-shared: registered once, not per server
            registry.register("costs", self.ledger)
        return registry

    def merged_timeseries(self, extra=()):
        """Fleet-wide time-series view: every live server's registry
        merged bucket-by-bucket (counters/gauges add, histograms merge
        exactly).  ``extra`` adds registries of servers no longer in
        :attr:`servers` — e.g. a killed server's pre-crash telemetry."""
        from repro.obs import TimeSeriesRegistry
        registries = [self.servers[name].timeseries
                      for name in sorted(self.servers)]
        registries.extend(extra)
        return TimeSeriesRegistry.merged(registries, clock=lambda:
                                         self.sim.now)

    # -- bootstrap ------------------------------------------------------------
    def bootstrap(self):
        """Generator: publish every server, then mutual peer discovery."""
        for server in self.servers.values():
            yield from server.publish()
        for server in self.servers.values():
            yield from server.discover_peers()

    def run_bootstrap(self) -> None:
        """Drive the simulation through :meth:`bootstrap`."""
        proc = self.sim.spawn(self.bootstrap(), name="bootstrap")
        self.sim.run(until=proc)

    def stop(self) -> None:
        """Shut every server down (end of scenario)."""
        for server in self.servers.values():
            server.stop()

    # -- crash recovery (E12) ------------------------------------------------
    def restart_server(self, name: str):
        """Replace a stopped server with a fresh one on the same host and
        recover its planes from the surviving storage backend.

        Returns ``(server, report)`` — the replacement and its
        :class:`~repro.storage.RecoveryReport`.  The caller re-runs
        :meth:`run_bootstrap` (or drives :meth:`bootstrap`) afterwards so
        the replacement rejoins the peer mesh.
        """
        old = self.servers[name]
        kwargs = self._server_kwargs.get(name, {})
        server = DiscoverServer(old.host, storage=self.storage.get(name),
                                **kwargs)
        if self.directory is not None:
            server.attach_directory(self.directory.client_for(server))
        self.servers[name] = server
        report = server.recover()
        return server, report


def build_collaboratory(n_domains: int, *, apps_hosts_per_domain: int = 4,
                        client_hosts_per_domain: int = 4,
                        names: Optional[List[str]] = None,
                        spec: Optional[LinkSpec] = None,
                        cost_model: Optional[CostModel] = None,
                        server_cpus: int = 1,
                        client_buffer_capacity: float = float("inf"),
                        trader_match_cost: float = 0.0008,
                        use_directory: bool = False,
                        directory_shards: int = 1,
                        directory_replicas: int = 1,
                        update_mode: str = "push",
                        update_poll_interval: float = 0.5,
                        remote_access: str = "relay",
                        trace_sampling="always",
                        trace_max_spans: int = 50_000,
                        health_period: float = 0.5,
                        health_gossip_period: Optional[float] = None,
                        health_enabled: bool = True,
                        accounting_enabled: bool = True,
                        log_sink=None,
                        storage_backend_factory=None,
                        storage_snapshot_every: Optional[int] = None,
                        timeseries_bucket_width: float = 0.25,
                        sim: Optional[Simulator] = None) -> Collaboratory:
    """Build a ready-to-bootstrap multi-domain collaboratory.

    ``trace_sampling`` / ``trace_max_spans`` configure the shared
    :class:`~repro.obs.Tracer` (``"always"``, ``"off"``, or int N for
    1-in-N root sampling).  Tracing is zero-event bookkeeping — it never
    changes virtual time or wire sizes, whatever the knob says.

    ``storage_backend_factory`` maps a server name to its durable
    :class:`~repro.storage.StorageBackend` (default: a fresh
    :class:`~repro.storage.MemoryBackend` per server, so every deployment
    is restartable via :meth:`Collaboratory.restart_server`).
    ``storage_snapshot_every`` overrides the journal's snapshot cadence.
    """
    sim = sim or Simulator()
    spec = spec or LinkSpec()
    costs = cost_model or CostModel()
    net, domains = build_multi_domain(
        sim, n_domains, apps_hosts_per_domain, client_hosts_per_domain,
        spec=spec, server_cpus=server_cpus, names=names)
    tracer = Tracer(sim, sampling=trace_sampling, max_spans=trace_max_spans)
    net.tracer = tracer
    # One cost ledger for the whole deployment: the rollup key carries no
    # server dimension, so every server's interceptor and the shared
    # network attribute into the same instance (zero-event bookkeeping).
    # ``accounting_enabled=False`` removes it entirely — the overhead
    # bench's control arm.
    ledger = None
    if accounting_enabled:
        from repro.obs import RequestCostLedger
        ledger = RequestCostLedger(sim,
                                   bucket_width=timeseries_bucket_width)
        net.cost_ledger = ledger

    # Registry host (naming + trader) on the first domain's LAN — the
    # "centralized directory service like the GIS" of §6.3.
    registry_host = net.add_host("registry", domain=domains[0].name)
    net.add_link(registry_host.name, domains[0].server.name,
                 spec.lan_latency, spec.lan_bandwidth, kind="lan")
    registry_orb = Orb(registry_host, cost_model=costs, tracer=tracer)
    naming = NamingService()
    trader = TraderService(naming, sim=sim, match_cost=trader_match_cost)
    naming_ref = registry_orb.activate(naming, key=NamingService.OBJECT_KEY)
    trader_ref = registry_orb.activate(trader, key=TraderService.OBJECT_KEY)
    directory = None
    if use_directory:
        # §6.3's GIS-style user directory, scaled out into a consistent-
        # hash ring of shard servants (repro.directory).  The default
        # single shard is co-hosted with the registry — the paper's exact
        # deployment shape — while ``directory_shards > 1`` spreads the
        # ring over dedicated hosts on the registry LAN with
        # ``directory_replicas``-way replication.
        from repro.directory import DirectoryPlane
        directory = DirectoryPlane(replicas=directory_replicas)
        if directory_shards <= 1:
            directory.add_shard(registry_host.name, registry_orb)
        else:
            for i in range(directory_shards):
                shard_host = net.add_host(f"dir{i}", domain=domains[0].name)
                net.add_link(shard_host.name, domains[0].server.name,
                             spec.lan_latency, spec.lan_bandwidth,
                             kind="lan")
                shard_orb = Orb(shard_host, cost_model=costs, tracer=tracer)
                directory.add_shard(shard_host.name, shard_orb)

    from repro.storage import DEFAULT_SNAPSHOT_EVERY, MemoryBackend
    snapshot_every = (DEFAULT_SNAPSHOT_EVERY if storage_snapshot_every is None
                      else storage_snapshot_every)
    servers: Dict[str, DiscoverServer] = {}
    backends: Dict[str, object] = {}
    server_kwargs: Dict[str, dict] = {}
    for domain in domains:
        name = domain.server.name
        backend = (storage_backend_factory(name)
                   if storage_backend_factory is not None
                   else MemoryBackend())
        kwargs = dict(
            domain=domain.name, cost_model=costs,
            naming_ref=naming_ref, trader_ref=trader_ref,
            client_buffer_capacity=client_buffer_capacity,
            update_mode=update_mode,
            update_poll_interval=update_poll_interval,
            remote_access=remote_access,
            tracer=tracer,
            health_period=health_period,
            health_gossip_period=health_gossip_period,
            health_enabled=health_enabled,
            log_sink=log_sink,
            storage_snapshot_every=snapshot_every,
            timeseries_bucket_width=timeseries_bucket_width,
            ledger=ledger,
            accounting_enabled=accounting_enabled)
        server = DiscoverServer(domain.server, storage=backend, **kwargs)
        if directory is not None:
            server.attach_directory(directory.client_for(server))
        servers[server.name] = server
        backends[server.name] = backend
        server_kwargs[server.name] = kwargs

    collab = Collaboratory(sim, net, domains, servers, registry_orb, naming,
                           trader, tracer=tracer)
    collab.ledger = ledger
    collab.directory = directory
    collab.naming_ref = naming_ref
    collab.trader_ref = trader_ref
    collab.storage = backends
    collab._server_kwargs = server_kwargs
    return collab


def build_single_server(*, app_hosts: int = 4, client_hosts: int = 4,
                        cost_model: Optional[CostModel] = None,
                        server_cpus: int = 1,
                        spec: Optional[LinkSpec] = None,
                        client_buffer_capacity: float = float("inf"),
                        sim: Optional[Simulator] = None) -> Collaboratory:
    """The single-domain configuration used by experiments E1–E3."""
    return build_collaboratory(
        1, apps_hosts_per_domain=app_hosts,
        client_hosts_per_domain=client_hosts, cost_model=cost_model,
        server_cpus=server_cpus, spec=spec,
        client_buffer_capacity=client_buffer_capacity, sim=sim)
