"""Oil reservoir waterflood — the IPARS-style demo application.

A 1-D two-phase (water/oil) Buckley–Leverett displacement solved with
explicit upwinding: water is injected at the left boundary and displaces
oil toward the producer on the right.  Steerable knobs mirror what a
reservoir engineer steers interactively: injection rate, fractional-flow
mobility ratio, and a tracer-injection actuator.
"""

from __future__ import annotations

import numpy as np

from repro.steering import (
    Actuator,
    Sensor,
    SteerableApplication,
    SteerableParameter,
)


class OilReservoirApp(SteerableApplication):
    """1-D Buckley–Leverett waterflood."""

    def __init__(self, host, name, server_host, *, cells: int = 200,
                 **kwargs) -> None:
        self.cells = cells
        #: water saturation per cell (connate water 0.1)
        self.saturation = np.full(cells, 0.1)
        self.tracer = np.zeros(cells)
        self.pore_volumes_injected = 0.0
        super().__init__(host, name, server_host, **kwargs)

    def setup(self) -> None:
        self.injection_rate = self.control.add_parameter(SteerableParameter(
            "injection_rate", 0.3, units="PV/100steps", minimum=0.0,
            maximum=2.0, description="water injection rate"))
        self.mobility_ratio = self.control.add_parameter(SteerableParameter(
            "mobility_ratio", 2.0, minimum=0.1, maximum=50.0,
            description="water/oil mobility ratio M in the flux function"))
        self.control.add_parameter(SteerableParameter(
            "cells", self.cells, read_only=True,
            description="grid resolution"))
        self.control.add_sensor(Sensor(
            "water_cut", self._water_cut, monitored=True,
            description="producing water fraction at the outlet"))
        self.control.add_sensor(Sensor(
            "oil_in_place", self._oil_in_place, monitored=True, units="PV",
            description="remaining oil (pore volumes)"))
        self.control.add_sensor(Sensor(
            "front_position", self._front_position, monitored=True,
            description="index of the displacement front"))
        self.control.add_sensor(Sensor(
            "saturation_profile", lambda: self.saturation.copy(),
            description="full water-saturation field"))
        self.control.add_actuator(Actuator(
            "inject_tracer", self._inject_tracer,
            description="drop a unit tracer slug at the injector"))

    # -- physics -------------------------------------------------------------
    def _fractional_flow(self, s: np.ndarray) -> np.ndarray:
        """Buckley–Leverett water fractional flow with mobility ratio M."""
        m = self.mobility_ratio.value
        sw = np.clip((s - 0.1) / 0.8, 0.0, 1.0)
        return sw ** 2 / (sw ** 2 + (1.0 - sw) ** 2 / m)

    def step(self, index: int) -> None:
        dt = self.injection_rate.value / 10.0
        f = self._fractional_flow(self.saturation)
        flux_in = np.empty_like(f)
        flux_in[0] = 1.0  # injector: pure water
        flux_in[1:] = f[:-1]
        self.saturation += dt * (flux_in - f) * self.cells / 50.0
        np.clip(self.saturation, 0.1, 0.9, out=self.saturation)
        # tracer advects with the water flux
        carrier = np.empty_like(self.tracer)
        carrier[0] = 0.0
        carrier[1:] = self.tracer[:-1]
        self.tracer = 0.98 * carrier
        self.pore_volumes_injected += dt

    # -- views -------------------------------------------------------------
    def _water_cut(self) -> float:
        return float(self._fractional_flow(self.saturation[-1:])[0])

    def _oil_in_place(self) -> float:
        return float(np.mean(0.9 - self.saturation) / 0.8 * 1.0)

    def _front_position(self) -> int:
        above = np.nonzero(self.saturation > 0.5)[0]
        return int(above[-1]) if len(above) else 0

    def _inject_tracer(self, amount: float = 1.0) -> dict:
        self.tracer[0] += amount
        return {"tracer_total": float(self.tracer.sum())}
