"""Server-side HTTP sessions.

The master servlet "creates a session object for each connecting client and
uses it to maintain information about client-server-application sessions"
(§4.1).  Sessions are identified by an opaque cookie.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

_session_seq = itertools.count(1)


class HttpSession:
    """One client's server-side state, addressed by its cookie."""

    def __init__(self, session_id: str, created_at: float) -> None:
        self.session_id = session_id
        self.created_at = created_at
        self.last_access = created_at
        self.attributes: Dict[str, Any] = {}

    def get(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.attributes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HttpSession {self.session_id}>"


class SessionManager:
    """Creates, resolves, and expires sessions for one container."""

    def __init__(self, timeout: float = 1800.0) -> None:
        self.timeout = timeout
        self._sessions: Dict[str, HttpSession] = {}

    def create(self, now: float) -> HttpSession:
        """Create a fresh session."""
        sid = f"JSESSIONID-{next(_session_seq)}"
        session = HttpSession(sid, now)
        self._sessions[sid] = session
        return session

    def resolve(self, cookie: str, now: float) -> Optional[HttpSession]:
        """Return the live session for ``cookie`` (touching it), or None."""
        session = self._sessions.get(cookie)
        if session is None:
            return None
        if now - session.last_access > self.timeout:
            del self._sessions[cookie]
            return None
        session.last_access = now
        return session

    def invalidate(self, cookie: str) -> None:
        """Drop a session (logout)."""
        self._sessions.pop(cookie, None)

    def expire_stale(self, now: float) -> int:
        """Drop every session idle past the timeout; returns how many."""
        stale = [sid for sid, s in self._sessions.items()
                 if now - s.last_access > self.timeout]
        for sid in stale:
            del self._sessions[sid]
        return len(stale)

    def __len__(self) -> int:
        return len(self._sessions)
