"""Regression: a cross-server steering command reconstructs as ONE trace
tree spanning both servers, with the WAN hop on the critical path — the
tentpole acceptance scenario for the observability layer."""

import pytest

from repro.bench.scenarios import run_traced_remote_command

WAN_LATENCY = 0.060


@pytest.fixture(scope="module")
def traced_run():
    return run_traced_remote_command(wan_latency=WAN_LATENCY)


def test_command_reconstructs_as_single_cross_server_tree(traced_run):
    row, tracer, _registry = traced_run
    assert row["result"] is not None  # the steer actually ran
    store = tracer.store
    trace_id = store.trace_of_root("portal.command")
    assert trace_id is not None

    spans = store.spans(trace_id)
    assert len(spans) >= 6
    roots = store.tree(trace_id)
    assert len(roots) == 1, "cross-server propagation produced one tree"

    # the tree crosses the domain boundary: both DISCOVER servers appear
    servers = set(store.servers(trace_id))
    assert {"d0-server", "d1-server"} <= servers

    # every stage of the paper's remote-steering path is present
    ops = {span.op for span in spans}
    assert {"portal.command",         # client portal
            "/command/submit",        # HTTP plane on the local server
            "federation.deliver_command",  # router/federation relay
            "giop.deliver_command",   # GIOP client side
            "deliver_command",        # GIOP server side (home ORB)
            "proxy.deliver_command",  # CorbaProxy at the home server
            "net.hop"} <= ops


def test_wan_hop_is_recorded_and_on_the_critical_path(traced_run):
    _row, tracer, _registry = traced_run
    store = tracer.store
    trace_id = store.trace_of_root("portal.command")

    wan_hops = [span for span in store.spans(trace_id)
                if span.op == "net.hop" and span.attrs.get("wan")]
    assert wan_hops, "the command crossed the WAN"
    assert all(span.duration >= WAN_LATENCY for span in wan_hops)

    path = store.critical_path(trace_id)
    assert path, "critical path reconstructs"
    path_spans = {seg.span.op for seg in path}
    assert "net.hop" in path_spans
    wan_on_path = [seg for seg in path
                   if seg.span.op == "net.hop" and seg.span.attrs.get("wan")]
    assert wan_on_path, "the WAN hop bounds end-to-end latency"
    assert max(seg.duration for seg in wan_on_path) >= WAN_LATENCY


def test_metrics_registry_exposes_all_sources(traced_run):
    _row, _tracer, registry = traced_run
    snap = registry.snapshot()
    assert {"pipeline[d0-server]", "pipeline[d1-server]",
            "federation[d0-server]", "federation[d1-server]",
            "traffic", "spans"} <= set(snap)
    assert snap["spans"]["spans"] > 0
    flat = dict(registry.flattened())
    assert flat["spans.spans"] == snap["spans"]["spans"]


def test_exporter_round_trips_the_real_trace(traced_run, tmp_path):
    _row, tracer, _registry = traced_run
    from repro.obs import export_jsonl, load_jsonl, tree_signature
    store = tracer.store
    path = tmp_path / "trace.jsonl"
    assert export_jsonl(store, str(path)) == len(store)
    loaded = load_jsonl(str(path))
    assert len(loaded) == len(store)
    for trace_id in store.trace_ids():
        assert (tree_signature(loaded, trace_id)
                == tree_signature(store, trace_id))


def test_sampling_off_records_nothing_and_changes_nothing():
    row_on, tracer_on, _reg_on = run_traced_remote_command(
        wan_latency=WAN_LATENCY)
    row_off, tracer_off, _reg_off = run_traced_remote_command(
        wan_latency=WAN_LATENCY, sampling="off")

    # zero spans with sampling off
    assert len(tracer_off.store) == 0
    assert row_off["spans_recorded"] == 0
    assert row_off["traces_recorded"] == 0

    # tracing is zero-event: identical results and virtual timings
    assert row_off["result"] == row_on["result"]
    assert row_off["virtual_time_s"] == row_on["virtual_time_s"]
    for key in ("http_requests", "orb_requests", "channel_requests",
                "pipeline_errors"):
        assert row_off[key] == row_on[key]
