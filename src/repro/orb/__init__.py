"""A miniature Object Request Broker — the reproduction's CORBA.

The DISCOVER middleware substrate "builds on CORBA/IIOP, which provides
peer-to-peer connectivity between DISCOVER servers within and across
domains" (§4.2), locates servers through the **CORBA trader service** and
applications through the **CORBA naming service** (§5.2.1).  This package
rebuilds exactly the pieces the paper uses:

- :class:`Orb` — one broker per host; exposes servants through an object
  adapter and invokes remote operations with request/reply correlation
  (:mod:`repro.orb.giop` is the wire protocol).
- :class:`ObjectRef` — an IOR-like reference ``(host, port, object_key)``
  that can itself travel over the wire.
- :class:`NamingService` — bind/resolve/unbind/list of name → reference.
- :class:`TraderService` — the paper's "minimalist trader service on top of
  the CORBA naming service": service-offer pairs with property lists,
  queried by service id (all DISCOVER servers export service id
  ``"DISCOVER"``).

Every invocation charges the *server* host CPU the CORBA dispatch cost from
the :class:`~repro.net.costs.CostModel` — this is where §6.2's "CORBA ...
reduces performance when compared to a lower level socket based system"
comes from, and experiment E11 measures it.
"""

from repro.orb.adapter import ObjectAdapter
from repro.orb.core import Orb
from repro.orb.errors import (
    BadOperation,
    CommFailure,
    ObjectNotFound,
    OrbError,
    RemoteException,
)
from repro.orb.naming import NamingService
from repro.orb.reference import ObjectRef
from repro.orb.trader import ServiceOffer, TraderService

__all__ = [
    "BadOperation",
    "CommFailure",
    "NamingService",
    "ObjectAdapter",
    "ObjectNotFound",
    "ObjectRef",
    "Orb",
    "OrbError",
    "RemoteException",
    "ServiceOffer",
    "TraderService",
]
