"""Fleet-scale deployment + the E11 directory workload.

E1–E10 deploy the paper's literal shape (a few campus domains, full WAN
mesh).  A full mesh is O(n²) links — useless at fleet scale — so
:func:`build_fleet` wires N lean DISCOVER servers and M directory shard
hosts in a star through one backbone host (``core``): any server reaches
any shard in two WAN half-hops, the modern
many-services-behind-a-backbone shape.  Servers skip naming/trader
bootstrap entirely: at this scale *the sharded directory plane is* the
discovery mechanism, which is exactly what E11 measures.

:func:`run_fleet_directory` drives 10⁵+ simulated client sessions from a
declarative :class:`~repro.bench.traffic.TrafficSpec` through real
``DiscoverServer.client_login`` / ``DirectoryClient.locate_app`` /
``client_logout`` calls and reports per-shard load flatness and
fleet-wide lookup latency percentiles — the two quantities the
acceptance story cares about (flat shards, p99 independent of fleet
size).  An optional ``kill_shard_at`` crashes one replica mid-run to
drill read failover.

:func:`run_noisy_neighbor_drill` is E14: one principal floods the shared
directory plane of a 50-server fleet while the cost-attribution ledger
(one shared :class:`~repro.obs.RequestCostLedger`) keeps exact
per-principal books — the drill asserts the per-principal cost vectors
partition the global totals bit-for-bit and that the space-saving
sketches surface the flooder within one time-series bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.traffic import TrafficSpec, constant, exponential, session_plans
from repro.core.server import DiscoverServer
from repro.directory import DirectoryPlane, make_app_id
from repro.metrics.stats import Reservoir
from repro.net import Network
from repro.net.costs import CostModel, LinkSpec
from repro.obs import RequestCostLedger
from repro.orb import Orb, OrbError
from repro.pipeline.core import PLANE_ORB
from repro.pipeline.interceptors import default_pipeline
from repro.sim import Simulator
from repro.sim.rng import DeterministicRNG


@dataclass
class Fleet:
    """A star-backbone deployment of servers plus the directory plane."""

    sim: Simulator
    net: Network
    servers: List[DiscoverServer]
    plane: DirectoryPlane
    ledger: Optional[RequestCostLedger] = None
    by_name: Dict[str, DiscoverServer] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.by_name:
            self.by_name = {s.name: s for s in self.servers}

    def stop(self) -> None:
        for server in self.servers:
            server.stop()


def build_fleet(n_servers: int, *, directory_shards: int = 4,
                directory_replicas: int = 2,
                spec: Optional[LinkSpec] = None,
                cost_model: Optional[CostModel] = None,
                peer_call_timeout: float = 3.0,
                health_period: float = 5.0,
                bucket_width: float = 0.25,
                sim: Optional[Simulator] = None) -> Fleet:
    """N servers + M shard hosts in a star through a ``core`` backbone.

    Each edge link carries half the WAN latency, so any server-to-shard
    path costs one WAN RTT — uniform by construction, which keeps the
    fleet-size comparison about the *directory plane*, not topology
    luck.  Tracing is off and health ticks are slow: at 10⁵ sessions the
    observability machinery would otherwise dominate the wall clock.

    One shared :class:`~repro.obs.RequestCostLedger` spans the fleet:
    every server, every shard ORB pipeline, and the network's per-hop
    byte accounting attribute into the same instance (zero-event
    bookkeeping — E11's numbers are untouched).  ``bucket_width`` sets
    the ledger's time-series resolution, which bounds E14's
    heavy-hitter detection latency.
    """
    if n_servers < 2:
        raise ValueError("a fleet needs at least 2 servers")
    from repro.core.deployment import reset_runtime_ids
    reset_runtime_ids()
    sim = sim or Simulator()
    spec = spec or LinkSpec()
    costs = cost_model or CostModel()
    net = Network(sim)
    ledger = RequestCostLedger(sim, bucket_width=bucket_width)
    net.cost_ledger = ledger
    half_wan = spec.wan_latency / 2
    net.add_host("core")
    plane = DirectoryPlane(replicas=directory_replicas)
    for i in range(directory_shards):
        host = net.add_host(f"dir{i}")
        net.add_link("core", host.name, half_wan, spec.wan_bandwidth,
                     kind="wan")
        # shard ORBs are bare (no DiscoverServer), so they get an
        # accounting-only pipeline — directory reads are where a noisy
        # principal's load lands, exactly what E14 must attribute
        shard_pipeline = default_pipeline(
            PLANE_ORB, clock=lambda: sim.now, server=host.name,
            accounting=ledger)
        plane.add_shard(host.name, Orb(host, cost_model=costs,
                                       pipeline=shard_pipeline))
    servers: List[DiscoverServer] = []
    for i in range(n_servers):
        host = net.add_host(f"s{i}")
        net.add_link("core", host.name, half_wan, spec.wan_bandwidth,
                     kind="wan")
        # tracer defaults to SAMPLE_OFF for standalone servers — exactly
        # what a 10⁵-session run wants
        server = DiscoverServer(
            host, cost_model=costs,
            peer_call_timeout=peer_call_timeout,
            health_period=health_period,
            ledger=ledger)
        server.attach_directory(plane.client_for(server))
        servers.append(server)
    return Fleet(sim=sim, net=net, servers=servers, plane=plane,
                 ledger=ledger)


@dataclass
class Population:
    """The synthetic app/user universe published to the directory."""

    users: List[str]
    app_ids: List[str]
    #: app_id → home server name (ground truth for locate assertions)
    homes: Dict[str, str]


def publish_population(fleet: Fleet, *, n_apps: int, n_users: int,
                       users_per_app: int = 6,
                       rng: Optional[DeterministicRNG] = None) -> Population:
    """Generator: publish a synthetic app population through the plane.

    Apps are homed round-robin across the fleet; every user is written
    into (at least) two apps with *distinct* homes, so any login finds a
    remote listing whatever edge server the session lands on.  ACLs are
    registered in the home server's SecurityManager and published through
    its ``DirectoryClient`` — the same write path real registration uses.
    """
    rng = rng or DeterministicRNG(0, "population")
    acl_rng = rng.child("acls")
    priv_rng = rng.child("privs")
    users = [f"u{j}" for j in range(n_users)]
    servers = fleet.servers
    app_ids: List[str] = []
    homes: Dict[str, str] = {}
    acls: Dict[str, Dict[str, str]] = {}
    for i in range(n_apps):
        home = servers[i % len(servers)]
        app_id = make_app_id(home.name, i // len(servers))
        app_ids.append(app_id)
        homes[app_id] = home.name
        acls[app_id] = {}
    # guaranteed memberships: user j joins apps j%A and (j+1)%A — homed
    # round-robin, so consecutive apps live on different servers
    for j, user in enumerate(users):
        acls[app_ids[j % n_apps]][user] = "write"
        acls[app_ids[(j + 1) % n_apps]][user] = "read"
    for app_id in app_ids:
        acl = acls[app_id]
        while len(acl) < min(users_per_app, n_users):
            user = acl_rng.choice(users)
            if user not in acl:
                acl[user] = "write" if priv_rng.uniform() < 0.3 else "read"
    for app_id in app_ids:
        home = fleet.by_name[homes[app_id]]
        home.security.register_app_acl(app_id, acls[app_id])
        yield from home.directory.publish_app(
            app_id, home.name, f"sim-{app_id}", acls[app_id])
    return Population(users=users, app_ids=app_ids, homes=homes)


def _session(server: DiscoverServer, plan, homes: Dict[str, str],
             counters: Dict[str, int]):
    """One scripted client visit: login → N locates → logout."""
    try:
        client_id = yield from server.client_login(plan.user)
    except Exception:
        counters["failed"] += 1
        return
    try:
        for app_id, think in zip(plan.apps, plan.thinks):
            if think > 0:
                yield server.sim.timeout(think)
            try:
                home = yield from server.directory.locate_app(app_id)
            except OrbError:
                counters["lookup_errors"] += 1
                continue
            if home != homes.get(app_id):
                counters["misses"] += 1
        server.client_logout(client_id)
        counters["done"] += 1
    except Exception:
        counters["failed"] += 1


def run_fleet_directory(n_servers: int = 50, *, n_sessions: int = 20_000,
                        directory_shards: int = 8,
                        directory_replicas: int = 2,
                        n_apps: Optional[int] = None,
                        n_users: Optional[int] = None,
                        duration: Optional[float] = None,
                        traffic: Optional[TrafficSpec] = None,
                        kill_shard_at: Optional[float] = None,
                        seed: int = 0) -> dict:
    """E11: fleet-scale sharded-directory workload; returns one table row.

    ``duration`` defaults to whatever keeps each shard near ~50% CPU
    (≈6 ms of modeled ORB dispatch per read, ~3 reads per session), so
    scaling ``n_sessions`` or the fleet never silently saturates the
    plane — saturation is a *finding*, not a default.  With
    ``kill_shard_at`` the first ring node crashes at that offset and the
    run doubles as the failover drill.
    """
    n_apps = n_apps or max(8, 4 * n_servers)
    n_users = n_users or max(100, n_sessions // 20)
    if duration is None:
        # per-shard read rate ≈ 3 * n_sessions / duration / shards;
        # hold it near 80/s (≈50% of one modeled shard CPU)
        duration = max(20.0, 3.0 * n_sessions / (80.0 * directory_shards))
    fleet = build_fleet(n_servers, directory_shards=directory_shards,
                        directory_replicas=directory_replicas)
    sim = fleet.sim
    rng = DeterministicRNG(seed, "e11")
    pub = sim.spawn(publish_population(fleet, n_apps=n_apps,
                                       n_users=n_users, rng=rng),
                    name="publish-population")
    population = sim.run(until=pub)
    publish_loads = dict(fleet.plane.per_shard_load())

    # uniform app mix by default: the ring flattens *keyspace*, not
    # popularity — a zipf mix (available via ``traffic=``) shows hot-app
    # skew concentrating on single shards, a finding EXPERIMENTS records
    spec = traffic or TrafficSpec(
        total_sessions=n_sessions, duration=duration,
        ops_per_session=constant(2), think_time=exponential(0.1),
        app_mix="uniform", seed=seed)
    counters = {"done": 0, "failed": 0, "misses": 0, "lookup_errors": 0}
    server_names = [s.name for s in fleet.servers]

    def driver():
        for gap, plan in session_plans(spec, population.users,
                                       population.app_ids, server_names,
                                       rng=rng.child("traffic")):
            if gap > 0:
                yield sim.timeout(gap)
            sim.spawn(_session(fleet.by_name[plan.edge], plan,
                               population.homes, counters),
                      name="e11-session")

    t0 = sim.now
    sim.spawn(driver(), name="e11-driver")
    if kill_shard_at is not None:
        def killer():
            yield sim.timeout(kill_shard_at)
            fleet.plane.kill_shard(fleet.plane.ring.nodes[0])
        sim.spawn(killer(), name="e11-killer")

    total = spec.total_sessions
    deadline = t0 + spec.duration + 120.0
    while (counters["done"] + counters["failed"] < total
           and sim.now < deadline):
        sim.run(until=min(sim.now + 10.0, deadline))

    # fleet-wide read latency: merge every server's reservoir — exact
    # count/mean/min/max composition, traffic-weighted sample retention
    # (Reservoir.merge), so the fleet tail isn't lost to concatenation
    merged = Reservoir()
    for server in fleet.servers:
        merged.merge(server.directory_metrics.read_reservoir())
    reads = merged.count
    stats = merged.stats().scaled(1e3)

    # per-shard load flatness over the *traffic* phase only (publishing
    # is write-through: every replica sees every write by design)
    loads = {shard: count - publish_loads.get(shard, 0)
             for shard, count in
             fleet.plane.per_shard_load(live_only=True).items()}
    mean_load = (sum(loads.values()) / len(loads)) if loads else 0.0
    flatness = (max(loads.values()) / mean_load) if mean_load else 0.0

    from repro.bench.scenarios import pipeline_counters
    row = {
        "n_servers": n_servers,
        "n_shards": directory_shards,
        "n_replicas": directory_replicas,
        "n_apps": n_apps,
        "n_users": n_users,
        "sessions": total,
        "sessions_done": counters["done"],
        "sessions_failed": counters["failed"],
        "locate_misses": counters["misses"],
        "lookup_errors": counters["lookup_errors"],
        "dir_reads": reads,
        "lookup_mean_ms": round(stats.mean, 3),
        "lookup_p50_ms": round(stats.p50, 3),
        "lookup_p99_ms": round(stats.p99, 3),
        "shard_load_max_over_mean": round(flatness, 3),
        "ring_epoch": fleet.plane.ring.epoch,
        "virtual_duration_s": round(sim.now - t0, 1),
    }
    row.update(pipeline_counters(fleet.servers))
    fleet.stop()
    return row


#: dimensions the E14 flooder must dominate (its lookups land on the shard
#: pipelines and the WAN star; its junk frames land on the drop path)
FLOOD_DIMS = ("requests", "events", "cpu_us", "wan_bytes",
              "dropped_frames", "dropped_bytes")

#: an unbound backbone port the flooder sprays junk at (discard, RFC 863)
_NOISE_PORT = 9


def _flood_lookup(server: DiscoverServer, app_id: str,
                  counters: Dict[str, int]):
    try:
        yield from server.directory.locate_app(app_id)
        counters["flood_lookups"] += 1
    except OrbError:
        counters["flood_errors"] += 1


def run_noisy_neighbor_drill(n_servers: int = 50, *,
                             n_sessions: int = 2_000,
                             directory_shards: int = 8,
                             directory_replicas: int = 2,
                             duration: float = 60.0,
                             flood_start: float = 15.0,
                             flood_rate: float = 200.0,
                             n_apps: Optional[int] = None,
                             n_users: Optional[int] = None,
                             bucket_width: float = 0.25,
                             seed: int = 0,
                             profiler=None) -> Tuple[dict, Fleet]:
    """E14: one principal floods the fleet; the ledger must name it.

    Background load is the E11 session mix spread evenly over the fleet.
    At ``flood_start`` the *last* server (chosen so sketch tie-breaking
    can never hand it the top slot for free — ties rank lexicographically
    and every other principal sorts first) starts hammering the shared
    directory plane at ``flood_rate`` lookups/s and spraying junk frames
    at an unbound backbone port, so the dropped-traffic dimensions have a
    heavy hitter too.  A monitor process samples the ledger's top-1
    sketch every ``bucket_width`` and records, per dimension, how long
    the flooder took to surface.

    The returned row carries the drill's three acceptance facts:

    - ``partition_exact`` — the per-principal cost vectors sum to the
      ledger's global totals **bit-for-bit** (integer arithmetic, every
      cost attributed to exactly one entry).
    - ``flooder_top_all_dims`` — the flooder is the top heavy hitter in
      every :data:`FLOOD_DIMS` dimension by the end of the run.
    - ``detection_latency_s`` — per-dimension time from flood start to
      the sketch naming the flooder; the E14 acceptance bound is one
      time-series bucket (monitor resolution = ``bucket_width``).

    ``profiler`` (a :class:`~repro.obs.DispatchProfiler`) is installed on
    the kernel for the whole drill when given — the CI artifact path.

    Returns ``(row, fleet)`` — the live fleet so callers (the costs CLI,
    the CI snapshot exporter) can read ``fleet.ledger`` before stopping
    it, like the other drill scenarios.
    """
    n_apps = n_apps or max(8, 2 * n_servers)
    n_users = n_users or max(50, n_sessions // 10)
    fleet = build_fleet(n_servers, directory_shards=directory_shards,
                        directory_replicas=directory_replicas,
                        bucket_width=bucket_width)
    sim, ledger = fleet.sim, fleet.ledger
    if profiler is not None:
        profiler.install(sim)
    rng = DeterministicRNG(seed, "e14")
    pub = sim.spawn(publish_population(fleet, n_apps=n_apps,
                                       n_users=n_users, rng=rng),
                    name="publish-population")
    population = sim.run(until=pub)

    spec = TrafficSpec(total_sessions=n_sessions, duration=duration,
                       ops_per_session=constant(2),
                       think_time=exponential(0.1),
                       app_mix="uniform", seed=seed)
    counters = {"done": 0, "failed": 0, "misses": 0, "lookup_errors": 0,
                "flood_lookups": 0, "flood_errors": 0,
                "flood_noise_frames": 0}
    server_names = [s.name for s in fleet.servers]
    flooder = fleet.servers[-1]
    t0 = sim.now

    def driver():
        for gap, plan in session_plans(spec, population.users,
                                       population.app_ids, server_names,
                                       rng=rng.child("traffic")):
            if gap > 0:
                yield sim.timeout(gap)
            sim.spawn(_session(fleet.by_name[plan.edge], plan,
                               population.homes, counters),
                      name="e14-session")

    flood_t: Dict[str, float] = {}

    def flood():
        yield sim.timeout(flood_start)
        flood_t["start"] = sim.now
        noise = flooder.host.bind(45_999)
        app_rng = rng.child("flood")
        gap = 1.0 / flood_rate
        k = 0
        while sim.now < t0 + duration:
            sim.spawn(_flood_lookup(flooder,
                                    app_rng.choice(population.app_ids),
                                    counters),
                      name="e14-flood")
            if k % 4 == 0:
                noise.send("core", _NOISE_PORT, {"noise": k},
                           channel="flood")
                counters["flood_noise_frames"] += 1
            k += 1
            yield sim.timeout(gap)
        noise.close()

    detection: Dict[str, float] = {}

    def monitor():
        yield sim.timeout(flood_start)
        while (sim.now < t0 + duration + 10.0
               and len(detection) < len(FLOOD_DIMS)):
            for dim in FLOOD_DIMS:
                if dim in detection:
                    continue
                top = ledger.top(dim, 1)
                if top and top[0][0] == flooder.name:
                    detection[dim] = round(sim.now - flood_t["start"], 6)
            yield sim.timeout(bucket_width)

    sim.spawn(driver(), name="e14-driver")
    sim.spawn(flood(), name="e14-flooder")
    sim.spawn(monitor(), name="e14-monitor")

    deadline = t0 + duration + 120.0
    while (counters["done"] + counters["failed"] < n_sessions
           and sim.now < deadline):
        sim.run(until=min(sim.now + 10.0, deadline))
    sim.run(until=min(sim.now + 5.0, deadline + 5.0))  # drain flood tail
    if profiler is not None:
        profiler.uninstall()

    # -- the books --------------------------------------------------------
    totals = ledger.total.as_dict()
    partition = {principal: vec.as_dict() for principal, vec
                 in ledger.partition_by("principal").items()}
    summed = {dim: 0 for dim in totals}
    for vec in partition.values():
        for dim, value in vec.items():
            summed[dim] += value
    partition_exact = summed == totals

    flooder_vec = partition.get(flooder.name, {})
    flooder_top = {dim: (lambda top: bool(top)
                         and top[0][0] == flooder.name)(ledger.top(dim, 1))
                   for dim in FLOOD_DIMS}
    row = {
        "n_servers": n_servers,
        "n_shards": directory_shards,
        "sessions": n_sessions,
        "sessions_done": counters["done"],
        "sessions_failed": counters["failed"],
        "lookup_errors": counters["lookup_errors"],
        "flooder": flooder.name,
        "flood_lookups": counters["flood_lookups"],
        "flood_errors": counters["flood_errors"],
        "flood_noise_frames": counters["flood_noise_frames"],
        "partition_exact": partition_exact,
        "principals": len(partition),
        "flooder_top_all_dims": all(flooder_top.values()),
        "flooder_top_dims": sum(flooder_top.values()),
        # by-dim dict; NOT "detection_latency_s" (the health footer's
        # scalar key from E10) so report footers format cleanly
        "detection_latency_by_dim_s": {dim: detection.get(dim)
                                       for dim in FLOOD_DIMS},
        "detection_latency_max_s": (max(detection.values())
                                    if len(detection) == len(FLOOD_DIMS)
                                    else None),
        "bucket_width_s": bucket_width,
        "flooder_requests": flooder_vec.get("requests", 0),
        "flooder_cpu_us": flooder_vec.get("cpu_us", 0),
        "flooder_wan_bytes": flooder_vec.get("wan_bytes", 0),
        "flooder_dropped_frames": flooder_vec.get("dropped_frames", 0),
        "virtual_duration_s": round(sim.now - t0, 1),
    }
    from repro.bench.scenarios import pipeline_counters
    row.update(pipeline_counters(fleet.servers))
    return row, fleet
