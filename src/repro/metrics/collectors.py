"""Runtime collectors driven inside simulation scenarios."""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.metrics.stats import SummaryStats, summarize

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator


class LatencyRecorder:
    """Collects latency samples per named operation."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._samples: Dict[str, List[float]] = defaultdict(list)
        self._open: Dict[tuple, float] = {}

    # -- explicit samples -----------------------------------------------
    def record(self, op: str, latency: float) -> None:
        self._samples[op].append(latency)

    # -- start/stop spans ---------------------------------------------------
    def start(self, op: str, key) -> None:
        """Open a span identified by ``(op, key)`` at the current time."""
        self._open[(op, key)] = self.sim.now

    def stop(self, op: str, key) -> Optional[float]:
        """Close a span; records and returns its duration."""
        t0 = self._open.pop((op, key), None)
        if t0 is None:
            return None
        latency = self.sim.now - t0
        self._samples[op].append(latency)
        return latency

    # -- reduction --------------------------------------------------------
    def samples(self, op: str) -> List[float]:
        return list(self._samples.get(op, ()))

    def stats(self, op: str) -> SummaryStats:
        return summarize(self._samples.get(op, ()))

    def operations(self) -> List[str]:
        return sorted(self._samples)

    def clear(self) -> None:
        self._samples.clear()
        self._open.clear()


class ThroughputMeter:
    """Counts events and reports rates over the elapsed virtual time."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._counts: Dict[str, int] = defaultdict(int)
        self._t0 = sim.now

    def count(self, op: str, n: int = 1) -> None:
        self._counts[op] += n

    def total(self, op: str) -> int:
        return self._counts.get(op, 0)

    def rate(self, op: str) -> float:
        """Events per virtual second since construction (or reset)."""
        elapsed = self.sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        return self._counts.get(op, 0) / elapsed

    def reset(self) -> None:
        self._counts.clear()
        self._t0 = self.sim.now
