"""PeerRegistry: peer discovery, liveness, and reference caches.

§5.2.1: "The application identifier is chosen to be a combination of the
server's IP address and a local count of the applications on each server
... the server's IP address can be extracted from this application
identifier, making it very easy to determine if the application is a local
application or a remote application."  :func:`home_server_of` implements
that extraction; everything else here manages *how to reach* the home
server once it is known.

The registry owns every cached artifact of the peer network — the
level-one peer stubs, the level-two ``CorbaProxy`` stubs, and the resolved
``CorbaProxy`` references — together with their invalidation rules:

- an ``app_stopped`` notice drops the application's proxy stub + ref;
- an :class:`~repro.orb.OrbError` from a peer call drops the peer's stub
  (and the proxy caches of applications homed there), so a restarted peer
  or re-registered application is re-resolved instead of served stale;
- re-registration always resolves fresh (application ids are never
  reused, but the rule keeps the cache honest under replays).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.interfaces import CORBA_PROXY, DISCOVER_CORBA_SERVER
from repro.directory import home_server_of  # noqa: F401 - façade
from repro.orb import CommFailure, ObjectRef, OrbError
from repro.orb.idl import Stub, make_stub

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import FederationMetrics
    from repro.orb import Orb

# home_server_of stays importable from here (its historical home), but the
# extraction itself now lives behind repro.directory's Placement — the
# directory-boundary lint forbids parsing app ids anywhere else.


class PeerRegistry:
    """One server's map of the peer network and its reference caches."""

    def __init__(self, orb: "Orb", server_name: str, *,
                 trader_ref: Optional[ObjectRef] = None,
                 service_id: str = "DISCOVER",
                 call_timeout: float = 30.0,
                 metrics: Optional["FederationMetrics"] = None) -> None:
        self.orb = orb
        self.server_name = server_name
        self.trader_ref = trader_ref
        self.service_id = service_id
        self.call_timeout = call_timeout
        self.metrics = metrics
        #: peer server name → level-one DiscoverCorbaServer reference
        self.peers: Dict[str, ObjectRef] = {}
        self._peer_stubs: Dict[str, Stub] = {}
        self._proxy_stubs: Dict[str, Stub] = {}
        #: app_id → resolved CorbaProxy reference (level-two cache)
        self._proxy_refs: Dict[str, ObjectRef] = {}
        #: the server's HealthMonitor — every peer call outcome feeds it,
        #: so liveness is judged in one place (set by DiscoverServer)
        self.health = None
        #: the server's StructuredLog (set by DiscoverServer)
        self.log = None

    # -- health feed -------------------------------------------------------
    def _note_peer(self, name: str, ok: bool) -> None:
        if self.health is not None:
            if ok:
                self.health.note_peer_success(name)
            else:
                self.health.note_peer_failure(name)

    def _note_peer_exc(self, name: str, exc: OrbError) -> None:
        """Fold a failed peer call into the health model.

        Only a :class:`CommFailure` counts as a liveness miss — any other
        ORB error (a :class:`RemoteException`, say) is an *answer*, which
        is proof the peer is alive even though the call failed.
        """
        self._note_peer(name, not isinstance(exc, CommFailure))

    def peer_unhealthy(self, name: str) -> bool:
        """Routing predicate: the health model says avoid this peer."""
        return self.health is not None and self.health.is_unhealthy_peer(name)

    # -- discovery ---------------------------------------------------------
    def discover_peers(self):
        """Generator: find every other DISCOVER server via the trader."""
        if self.trader_ref is None:
            # a server deployed without a trader cannot see the fleet —
            # surface the skip instead of dropping it on the floor
            if self.log is not None:
                self.log.warn("fed_discovery_skipped",
                              reason="no trader_ref",
                              service_id=self.service_id)
            if self.metrics is not None:
                self.metrics.count("discovery_skipped")
            return []
        offers = yield from self.orb.invoke(
            self.trader_ref, "query", self.service_id,
            timeout=self.call_timeout)
        found = []
        for offer in offers:
            peer = offer.properties.get("server", offer.ref.host)
            if peer == self.server_name:
                continue
            self.add_peer(peer, offer.ref)
            found.append(peer)
        return found

    def add_peer(self, name: str, ref: ObjectRef) -> None:
        """Static peer wiring (tests / fixed deployments).

        Re-adding a peer under a changed reference (a restarted server)
        drops every cache derived from the old reference.
        """
        if name == self.server_name:
            return
        if self.peers.get(name) != ref:
            self.invalidate_peer(name)
        self.peers[name] = ref

    def known_peers(self) -> List[str]:
        return sorted(self.peers)

    def check_peer(self, name: str):
        """Generator: liveness probe; False (and caches dropped) if dead."""
        try:
            answer = yield from self.peer_stub(name).ping()
        except OrbError as exc:
            self.invalidate_peer(name)
            self._note_peer_exc(name, exc)
            return False
        ok = answer == name
        self._note_peer(name, ok)
        return ok

    def exchange_health(self, peer: str, view: dict):
        """Generator: gossip one health view with a peer; returns the
        peer's view, or None if the peer is unreachable (noted as a miss).

        This is the only place the health plane touches the wire — opt-in
        via the monitor's ``gossip_period`` (see
        :class:`repro.health.HealthMonitor`).
        """
        try:
            answer = yield from self.peer_stub(peer).exchange_health(
                self.server_name, view)
        except OrbError as exc:
            self.invalidate_peer(peer)
            self._note_peer_exc(peer, exc)
            if self.log is not None:
                self.log.warn("federation.gossip_failed", peer=peer,
                              error=str(exc))
            return None
        self._note_peer(peer, True)
        return answer

    # -- typed stubs -------------------------------------------------------
    def peer_stub(self, name: str) -> Stub:
        """Typed level-one stub for a known peer server."""
        stub = self._peer_stubs.get(name)
        if stub is None or stub.ref != self.peers.get(name):
            try:
                ref = self.peers[name]
            except KeyError:
                raise OrbError(f"no peer server {name!r} known at "
                               f"{self.server_name}") from None
            stub = make_stub(self.orb, ref, DISCOVER_CORBA_SERVER,
                             timeout=self.call_timeout)
            self._peer_stubs[name] = stub
        return stub

    def proxy_stub(self, app_id: str, ref: ObjectRef) -> Stub:
        """Typed level-two stub for a remote application's CorbaProxy."""
        stub = self._proxy_stubs.get(app_id)
        if stub is None or stub.ref != ref:
            stub = make_stub(self.orb, ref, CORBA_PROXY,
                             timeout=self.call_timeout)
            self._proxy_stubs[app_id] = stub
        return stub

    def remote_proxy_ref(self, app_id: str):
        """Generator: resolve (and cache) a remote app's CorbaProxy ref."""
        ref = self._proxy_refs.get(app_id)
        if ref is not None:
            return ref
        home = home_server_of(app_id)
        with self.orb.tracer.span("federation.resolve_proxy",
                                  plane="federation",
                                  server=self.server_name,
                                  attrs={"app_id": app_id, "home": home}):
            try:
                ref = yield from self.peer_stub(home).get_corba_proxy(app_id)
            except OrbError as exc:
                self.invalidate_peer(home)
                self._note_peer_exc(home, exc)
                raise
        self._note_peer(home, True)
        self._proxy_refs[app_id] = ref
        return ref

    def remote_proxy_stub(self, app_id: str):
        """Generator: resolved, cached level-two stub for a remote app."""
        ref = yield from self.remote_proxy_ref(app_id)
        return self.proxy_stub(app_id, ref)

    # -- invalidation ------------------------------------------------------
    def invalidate_app(self, app_id: str) -> None:
        """Drop the level-two caches of one application."""
        dropped = (self._proxy_stubs.pop(app_id, None) is not None)
        dropped = (self._proxy_refs.pop(app_id, None) is not None) or dropped
        if dropped and self.metrics is not None:
            self.metrics.count("app_invalidations")

    def invalidate_peer(self, name: str) -> None:
        """Drop the peer's stub and every proxy cache homed at it.

        The peer's discovery entry (``self.peers``) survives — availability
        is "determined at runtime" (§4.2), so the next call re-resolves
        through the same reference, or re-discovery replaces it.
        """
        dropped = self._peer_stubs.pop(name, None) is not None
        for app_id in [a for a in self._proxy_refs
                       if home_server_of(a) == name]:
            self._proxy_refs.pop(app_id, None)
            dropped = True
        for app_id in [a for a in self._proxy_stubs
                       if home_server_of(a) == name]:
            self._proxy_stubs.pop(app_id, None)
            dropped = True
        if dropped and self.metrics is not None:
            self.metrics.count("peer_invalidations")

    def cached_apps(self) -> List[str]:
        """App ids with a live level-two cache entry (for tests/inspection)."""
        return sorted(set(self._proxy_refs) | set(self._proxy_stubs))

    # -- level-one fan-out helpers ----------------------------------------
    def collect_remote_apps(self, user: str) -> dict:
        """Generator: the §5.2.2 login fan-out — authenticate ``user`` with
        every peer and merge the application summaries they return."""
        found: Dict[str, dict] = {}
        for peer in list(self.peers):
            if self.peer_unhealthy(peer):
                # the health model already marked it down — skip the
                # synchronous call instead of burning a timeout on it
                if self.log is not None:
                    self.log.warn("federation.skip_unhealthy_peer",
                                  peer=peer, op="authenticate_and_list")
                continue
            try:
                apps = yield from self.peer_stub(peer).authenticate_and_list(
                    user)
            except OrbError as exc:
                # peer down — availability "determined at runtime"
                self.invalidate_peer(peer)
                self._note_peer_exc(peer, exc)
                if self.log is not None:
                    self.log.warn("federation.peer_unreachable", peer=peer,
                                  op="authenticate_and_list", error=str(exc))
                continue
            self._note_peer(peer, True)
            for summary in apps:
                found[summary["app_id"]] = summary
        return found

    def push_update(self, peer: str, app_id: str, msg) -> bool:
        """Oneway §5.2.3 update push to a subscribed peer (if known and
        not marked unhealthy)."""
        if peer not in self.peers or self.peer_unhealthy(peer):
            return False
        self.peer_stub(peer).deliver_update(app_id, msg)
        return True

    def push_group_message(self, peer: str, app_id: str, group: str, msg,
                           exclude: str = "") -> bool:
        """Oneway group-message push to a subscribed peer (if known and
        not marked unhealthy)."""
        if peer not in self.peers or self.peer_unhealthy(peer):
            return False
        self.peer_stub(peer).deliver_group_message(app_id, group, msg,
                                                   exclude=exclude)
        return True

    def push_to_client(self, owner: str, client_id: str, msg) -> bool:
        """Oneway response/notification push to the client's home server."""
        if owner not in self.peers or self.peer_unhealthy(owner):
            return False
        self.peer_stub(owner).deliver_to_client(client_id, msg)
        return True
