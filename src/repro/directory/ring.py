"""Consistent-hash ring with virtual nodes and an explicit epoch.

Nodes are directory shard servers; keys are user names and app ids.
Each node is hashed at ``vnodes`` points on a 64-bit circle and a key
is owned by the first node point at or clockwise-after the key's hash
(``shard_of``).  ``replicas_of`` walks further clockwise and collects
the first R *distinct* nodes, so replica sets survive vnode
interleaving.

Hashing uses BLAKE2b with an 8-byte digest — deterministic across
processes and Python versions (``hash()`` is salted by
``PYTHONHASHSEED`` and must never reach placement decisions).

Membership changes (``add_node``/``remove_node``) bump ``epoch``.
Clients stamp every shard call with the epoch they routed under;
servants reject stale epochs so a caller that routed on an old ring
re-resolves instead of silently writing to the wrong shard.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

#: default virtual-node count per server — enough that 1000 keys over a
#: handful of shards balance within ~2x of ideal (property-tested).
DEFAULT_VNODES = 128


def _hash64(data: str) -> int:
    """Deterministic 64-bit point on the ring for ``data``."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring over named shard servers."""

    def __init__(self, nodes: Iterable[str] = (), *,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: bumped on every membership change; stamped on shard calls
        self.epoch = 0
        self._nodes: Dict[str, List[int]] = {}
        # sorted, parallel: _points[i] is owned by _owners[i]
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add_node(node)

    # -- membership --------------------------------------------------------
    def add_node(self, node: str) -> int:
        """Add ``node``; returns the new epoch."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on ring")
        points = [_hash64(f"{node}#v{i}") for i in range(self.vnodes)]
        self._nodes[node] = points
        for point in points:
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)
        self.epoch += 1
        return self.epoch

    def remove_node(self, node: str) -> int:
        """Remove ``node``; returns the new epoch."""
        points = self._nodes.pop(node, None)
        if points is None:
            raise KeyError(node)
        for point in points:
            idx = bisect.bisect_left(self._points, point)
            # duplicate hash points are astronomically unlikely but make
            # the scan exact anyway
            while self._owners[idx] != node:
                idx += 1
            del self._points[idx]
            del self._owners[idx]
        self.epoch += 1
        return self.epoch

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- key placement -----------------------------------------------------
    def shard_of(self, key: str) -> str:
        """Primary owner of ``key`` (first node point clockwise)."""
        if not self._points:
            raise LookupError("ring has no nodes")
        idx = bisect.bisect(self._points, _hash64(key)) % len(self._points)
        return self._owners[idx]

    def replicas_of(self, key: str, r: int) -> List[str]:
        """First ``r`` *distinct* nodes clockwise from ``key``.

        The primary (``shard_of``) is always ``replicas_of(key, r)[0]``.
        When the ring has fewer than ``r`` nodes, every node is returned.
        """
        if not self._points:
            raise LookupError("ring has no nodes")
        want = min(r, len(self._nodes))
        start = bisect.bisect(self._points, _hash64(key))
        total = len(self._points)
        out: List[str] = []
        seen = set()
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == want:
                    break
        return out

    # -- introspection -----------------------------------------------------
    def spread(self, keys: Iterable[str]) -> Dict[str, int]:
        """``{node: owned key count}`` over ``keys`` (balance checks)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts

    def describe(self) -> List[Tuple[str, int]]:
        """``(node, vnode_count)`` pairs, sorted — for docs/CLI dumps."""
        return [(node, len(points))
                for node, points in sorted(self._nodes.items())]
