"""E1 — §6.1: "The current middleware can support more than 40
simultaneous applications on a single server."

Sweep the number of applications pushing periodic updates at one server
over the custom TCP channel and locate the saturation knee.  The shape to
reproduce: comfortably healthy at 40+, saturating somewhere past that.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.scenarios import run_app_scalability

SWEEP = (10, 20, 30, 40, 50, 60, 70)
DURATION = 20.0


def test_bench_e1_app_scalability(benchmark):
    rows = run_once(benchmark, lambda: [
        run_app_scalability(n, duration=DURATION) for n in SWEEP])
    print_experiment(
        "E1: simultaneous applications per server",
        "supports more than 40 simultaneous applications on a single server",
        rows,
        ["n_apps", "offered_updates_per_s", "mean_lag_ms", "p90_lag_ms",
         "throughput_per_s", "saturated"],
        finding=_finding(rows),
    )
    by_n = {r["n_apps"]: r for r in rows}
    # the paper's operating point: >40 apps unsaturated
    assert not by_n[40]["saturated"]
    assert not by_n[50]["saturated"]
    # the knee exists: eventually the server saturates
    assert by_n[70]["saturated"]
    # lag grows monotonically-ish with offered load across the knee
    assert by_n[70]["mean_lag_ms"] > 5 * by_n[40]["mean_lag_ms"]


def _finding(rows) -> str:
    ok = max(r["n_apps"] for r in rows if not r["saturated"])
    first_bad = min((r["n_apps"] for r in rows if r["saturated"]),
                    default=None)
    return (f"healthy at {ok} simultaneous apps; saturation first observed "
            f"at {first_bad} (paper claims >40 supported)")
