"""The CI boundary lint must hold on the checked-in tree."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parents[2]


def test_dispatch_modules_do_not_import_security_or_policies():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_pipeline_boundary.py"),
         str(ROOT)],
        capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    assert "pipeline boundary OK" in proc.stdout
    assert "federation boundary OK" in proc.stdout
    assert "obs boundary OK" in proc.stdout
    assert "storage boundary OK" in proc.stdout


def test_federation_lint_catches_stub_usage(tmp_path):
    """The lint flags is_local_app/peer_stub/proxy_stub outside
    repro.federation — and only exact names (remote_proxy_stub is fine)."""
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_pipeline_boundary as lint
    finally:
        sys.path.pop(0)
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def handler(server, app_id):\n"
        "    if server.is_local_app(app_id):\n"
        "        return server.proxy_stub(app_id, None)\n"
        "    return peer_stub\n")
    hits = lint.federation_leaks(bad)
    assert sorted(name for _, name in hits) == [
        "is_local_app", "peer_stub", "proxy_stub"]
    ok = tmp_path / "ok.py"
    ok.write_text(
        "def handler(registry, app_id):\n"
        "    return registry.remote_proxy_stub(app_id)\n")
    assert lint.federation_leaks(ok) == []


def test_obs_lint_catches_span_internals(tmp_path):
    """The lint flags submodule imports and direct span construction;
    the facade import and the Tracer API stay legal."""
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_pipeline_boundary as lint
    finally:
        sys.path.pop(0)
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.obs.span import Span\n"
        "import repro.obs.store\n"
        "def record(store):\n"
        "    store.add(Span(1, 2, None, 'op', 'http', 's', 0.0, 1.0))\n"
        "    return TraceContext(1, 2)\n")
    hits = lint.obs_leaks(bad)
    assert any("repro.obs.span" in what for _, what in hits)
    assert any("repro.obs.store" in what for _, what in hits)
    assert any("'Span'" in what for _, what in hits)
    assert any("'TraceContext'" in what for _, what in hits)
    ok = tmp_path / "ok.py"
    ok.write_text(
        "from repro.obs import SAMPLE_OFF, Tracer\n"
        "def trace(tracer, sim):\n"
        "    with tracer.span('op', plane='http', server='s'):\n"
        "        return tracer.current_context()\n")
    assert lint.obs_leaks(ok) == []


def test_storage_lint_catches_wal_internals(tmp_path):
    """The lint flags storage submodule imports and WAL-representation
    names; the facade import (StateJournal, backends) stays legal."""
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_pipeline_boundary as lint
    finally:
        sys.path.pop(0)
    bad = tmp_path / "bad.py"
    bad.write_text(
        "from repro.storage.wal import WriteAheadLog\n"
        "import repro.storage.backends\n"
        "def rebuild(backend):\n"
        "    wal = WriteAheadLog(backend)\n"
        "    return [WalRecord.from_entry(e) for e in backend.entries()]\n")
    hits = lint.storage_leaks(bad)
    assert any("repro.storage.wal" in what for _, what in hits)
    assert any("repro.storage.backends" in what for _, what in hits)
    assert any("'WriteAheadLog'" in what for _, what in hits)
    assert any("'WalRecord'" in what for _, what in hits)
    ok = tmp_path / "ok.py"
    ok.write_text(
        "from repro.storage import MemoryBackend, StateJournal\n"
        "def build(server):\n"
        "    journal = StateJournal(MemoryBackend())\n"
        "    journal.append('db.insert', {})\n"
        "    return journal.recover()\n")
    assert lint.storage_leaks(ok) == []


def test_core_file_io_lint(tmp_path):
    """A bare open() (or io.open) in a core module is a WAL bypass."""
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_pipeline_boundary as lint
    finally:
        sys.path.pop(0)
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import io\n"
        "def persist(state):\n"
        "    with open('/tmp/state.json', 'w') as fh:\n"
        "        fh.write(str(state))\n"
        "    return io.open('/tmp/log', 'a')\n")
    hits = lint.core_file_io(bad)
    assert sorted(what for _, what in hits) == ["calls io.open()",
                                                "calls open()"]
    ok = tmp_path / "ok.py"
    ok.write_text(
        "def persist(journal, state):\n"
        "    journal.append('db.insert', state)\n"
        "    session = mgr.open_session()\n")  # method named open is fine
    assert lint.core_file_io(ok) == []
