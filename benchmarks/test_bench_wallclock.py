"""Wall-clock performance of the simulator itself (BENCH trajectory).

Unlike every other benchmark in this directory — which reproduces a *paper*
measurement in virtual time — this one measures the real seconds the
reproduction burns on the wire fast path, network delivery, broadcast
fan-out, and two end-to-end scenarios.  It writes ``BENCH_1.json`` at the
repository root so successive PRs leave a perf trajectory.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_wallclock.py --benchmark-only -s
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import run_once

from repro.bench.wallclock import format_report, run_suite, write_report

#: where the committed perf trajectory lives
BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_1.json"


def test_wallclock_suite(benchmark):
    report = run_once(benchmark, lambda: run_suite(quick=False))
    print()
    print(format_report(report))
    write_report(str(BENCH_JSON), report)
    print(f"wrote {BENCH_JSON}")
    names = {entry["name"] for entry in report["benchmarks"]}
    assert "wire/encoded_size_update_64x64" in names
    assert "collab/broadcast_poll_30_subscribers" in names
    assert all(entry["per_op_us"] > 0 for entry in report["benchmarks"])
