"""Property tests for the consistent-hash ring (hypothesis).

The three properties the directory plane leans on: keys spread evenly
(max shard load within 2x of ideal over 1000 keys), membership changes
move only the keys they must (join: every moved key lands on the new
node; leave: only the removed node's keys move), and replica sets are
R distinct nodes led by the primary.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.directory import HashRing

node_counts = st.integers(min_value=2, max_value=8)


def keys(n=1000):
    return [f"user-{i}" for i in range(n)]


@settings(max_examples=25, deadline=None)
@given(n_nodes=node_counts)
def test_balance_within_2x_of_ideal(n_nodes):
    ring = HashRing([f"shard{i}" for i in range(n_nodes)])
    spread = ring.spread(keys())
    ideal = 1000 / n_nodes
    assert sum(spread.values()) == 1000
    assert max(spread.values()) <= 2 * ideal


@settings(max_examples=25, deadline=None)
@given(n_nodes=node_counts)
def test_join_moves_keys_only_to_the_new_node(n_nodes):
    ring = HashRing([f"shard{i}" for i in range(n_nodes)])
    before = {k: ring.shard_of(k) for k in keys()}
    ring.add_node("joiner")
    moved = {k for k, owner in before.items() if ring.shard_of(k) != owner}
    assert all(ring.shard_of(k) == "joiner" for k in moved)
    # and the newcomer takes roughly its fair share, no more than double
    assert len(moved) <= 2 * 1000 / (n_nodes + 1)


@settings(max_examples=25, deadline=None)
@given(n_nodes=node_counts)
def test_leave_moves_only_the_departed_nodes_keys(n_nodes):
    ring = HashRing([f"shard{i}" for i in range(n_nodes + 1)])
    before = {k: ring.shard_of(k) for k in keys()}
    ring.remove_node("shard0")
    for k, owner in before.items():
        if owner != "shard0":
            assert ring.shard_of(k) == owner
        else:
            assert ring.shard_of(k) != "shard0"


@settings(max_examples=25, deadline=None)
@given(n_nodes=node_counts, r=st.integers(min_value=1, max_value=5),
       key=st.text(min_size=1, max_size=20))
def test_replica_sets_are_r_distinct_nodes_led_by_primary(n_nodes, r, key):
    ring = HashRing([f"shard{i}" for i in range(n_nodes)])
    replicas = ring.replicas_of(key, r)
    assert len(replicas) == min(r, n_nodes)
    assert len(set(replicas)) == len(replicas)
    assert replicas[0] == ring.shard_of(key)


def test_placement_is_deterministic_across_instances():
    a = HashRing(["s1", "s2", "s3"])
    b = HashRing(["s3", "s1", "s2"])  # insertion order must not matter
    for k in keys(200):
        assert a.shard_of(k) == b.shard_of(k)
        assert a.replicas_of(k, 2) == b.replicas_of(k, 2)


def test_epoch_bumps_on_every_membership_change():
    ring = HashRing()
    assert ring.epoch == 0
    ring.add_node("s1")
    ring.add_node("s2")
    assert ring.epoch == 2
    ring.remove_node("s1")
    assert ring.epoch == 3
    with pytest.raises(ValueError):
        ring.add_node("s2")
    with pytest.raises(KeyError):
        ring.remove_node("ghost")
    assert ring.epoch == 3  # failed changes do not bump


def test_empty_ring_raises():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.shard_of("anyone")
    with pytest.raises(LookupError):
        ring.replicas_of("anyone", 2)
