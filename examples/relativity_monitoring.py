"""Automated run-health monitoring of a numerical-relativity evolution.

The Cactus-style workflow DISCOVER served: a long-running evolution is
watched through its *constraint monitor*; when a perturbation drives the
constraint violation past a threshold, the on-call scientist pauses the
run, raises the Kreiss-Oliger dissipation, and resumes — without ever
touching the machine the code runs on.

Run:  python examples/relativity_monitoring.py
"""

from repro import AppConfig, build_single_server
from repro.apps import RelativityApp


def main() -> None:
    collab = build_single_server()
    collab.run_bootstrap()

    evolution = collab.add_app(
        0, RelativityApp, "bbh-toy-evolution", points=200,
        acl={"oncall": "write"},
        config=AppConfig(steps_per_phase=25, step_time=0.01,
                         interaction_window=0.05))
    collab.sim.run(until=2.0)
    print(f"evolution online: {evolution.app_id}")

    oncall = collab.add_portal(0)
    THRESHOLD = 1e-3

    def watch_and_intervene():
        yield from oncall.login("oncall")
        session = yield from oncall.open(evolution.app_id)
        yield from session.acquire_lock()

        # something bumps the run: inject a sharp, noisy perturbation
        yield oncall.sim.timeout(2.0)
        yield from session.actuate("perturb",
                                   {"center": 0.3, "amplitude": 0.8,
                                    "width": 0.01})
        print("perturbation injected — watching the constraint monitor")

        intervened = False
        c_at_intervention = None
        post_readings = []
        for _ in range(14):
            yield oncall.sim.timeout(1.0)
            c = yield from session.read_sensor("constraint_norm")
            amp = yield from session.read_sensor("phi_max")
            marker = ""
            if c > THRESHOLD and not intervened:
                yield from session.pause()
                old = yield from session.get_param("dissipation")
                yield from session.set_param("dissipation", 0.15)
                yield from session.resume()
                marker = (f"<-- paused, dissipation {old} -> 0.15, "
                          f"resumed")
                intervened = True
                c_at_intervention = c
            elif intervened:
                post_readings.append(c)
            print(f"  t={oncall.sim.now:6.1f}  constraint={c:.3e}  "
                  f"|phi|max={amp:8.3f}  {marker}")

        final_c = yield from session.read_sensor("constraint_norm")
        final_amp = yield from session.read_sensor("phi_max")
        status = yield from session.app_status()
        print(f"\nat step {status['step']}: constraint growth halted at "
              f"{final_c:.2e}, field bounded (|phi|max = {final_amp:.2f})")
        return intervened, post_readings, final_c, final_amp

    proc = collab.sim.spawn(watch_and_intervene())
    intervened, post, c_final, amp_final = collab.sim.run(until=proc)
    assert intervened, "the monitor triggered an intervention"
    assert evolution.dissipation.value == 0.15
    # once the dissipation kicked in, the violation stopped growing and
    # the solution stayed bounded (an undissipated run blows up — see
    # tests/apps/test_science_apps.py)
    assert c_final < 1.2 * post[0]
    assert amp_final < 10.0
    print("intervention verified: dissipation is now "
          f"{evolution.dissipation.value}, run health stabilized")


if __name__ == "__main__":
    main()
