"""Interaction agents: execute steering commands against a control network.

The agent is the application-side half of the paper's command path: the
server forwards a client's :class:`~repro.wire.CommandMessage` to the
application, and the agent turns it into parameter reads/writes, sensor
samples, actuator invocations, or lifecycle transitions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.steering.controlnet import SteeringError

if TYPE_CHECKING:  # pragma: no cover
    from repro.steering.application import SteerableApplication


class InteractionAgent:
    """Command dispatcher superimposed on one application."""

    #: commands that modify application state and therefore require the
    #: steering lock (enforced server-side; listed here for the interface)
    MUTATING_COMMANDS = frozenset(
        {"set_param", "actuate", "pause", "resume", "stop"})

    def __init__(self, app: "SteerableApplication") -> None:
        self.app = app
        self.commands_handled = 0

    def handle(self, command: str, args: Dict[str, Any]) -> Any:
        """Execute one command; returns its result (raises SteeringError)."""
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            raise SteeringError(f"unknown command {command!r}")
        self.commands_handled += 1
        return handler(**args)

    # -- queries ----------------------------------------------------------
    def _cmd_get_param(self, name: str) -> Any:
        return self.app.control.parameter(name).value

    def _cmd_list_params(self) -> list:
        return [p.descriptor() for p in self.app.control.parameters.values()]

    def _cmd_read_sensor(self, name: str) -> Any:
        return self.app.control.sensor(name).read()

    def _cmd_describe(self) -> dict:
        return self.app.control.interface_descriptor()

    def _cmd_status(self) -> dict:
        return self.app.status()

    # -- mutations ---------------------------------------------------------
    def _cmd_set_param(self, name: str, value: Any) -> Any:
        return self.app.control.parameter(name).set(value)

    def _cmd_actuate(self, name: str, **kwargs: Any) -> Any:
        return self.app.control.actuator(name).actuate(**kwargs)

    def _cmd_pause(self) -> str:
        return self.app.request_pause()

    def _cmd_resume(self) -> str:
        return self.app.request_resume()

    def _cmd_stop(self) -> str:
        return self.app.request_stop()
