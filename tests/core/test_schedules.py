"""Tests for scheduled automated periodic interactions (§2.1)."""

import pytest

from repro import AppConfig, build_collaboratory, build_single_server
from repro.apps import SyntheticApp


def cfg():
    return AppConfig(steps_per_phase=2, step_time=0.01,
                     interaction_window=0.05, command_service_time=0.001)


@pytest.fixture
def site():
    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "wave",
                         acl={"alice": "write", "bob": "read"},
                         config=cfg())
    collab.sim.run(until=2.0)
    return collab, app


def run(collab, gen):
    return collab.sim.run(until=collab.sim.spawn(gen))


def test_schedule_delivers_periodic_responses(site):
    collab, app = site
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        sid = yield from session.schedule("read_sensor",
                                          {"name": "counter"},
                                          period=0.5, count=5)
        yield collab.sim.timeout(5.0)
        while (yield from portal.poll(max_items=64)):
            pass
        return (sid, len(portal._responses))

    sid, n_responses = run(collab, scenario())
    assert sid.startswith("sched-")
    assert n_responses == 5  # exactly `count` firings


def test_schedule_runs_until_cancelled(site):
    collab, app = site
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        sid = yield from session.schedule("status", {}, period=0.4)
        yield collab.sim.timeout(3.0)
        stopped = yield from session.unschedule(sid)
        while (yield from portal.poll(max_items=64)):
            pass
        n_before = len(portal._responses)
        yield collab.sim.timeout(3.0)
        while (yield from portal.poll(max_items=64)):
            pass
        return (stopped, n_before, len(portal._responses))

    stopped, before, after = run(collab, scenario())
    assert stopped is True
    assert before >= 5
    assert after == before  # nothing fired after cancellation


def test_cancel_twice_reports_already_stopped(site):
    collab, app = site
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        sid = yield from session.schedule("status", {}, period=0.5, count=2)
        yield collab.sim.timeout(3.0)  # schedule completes on its own
        return (yield from session.unschedule(sid))

    assert run(collab, scenario()) is False


def test_cannot_cancel_someone_elses_schedule(site):
    collab, app = site
    alice = collab.add_portal(0)
    bob = collab.add_portal(0)
    from repro.web import HttpError

    def scenario():
        yield from alice.login("alice")
        yield from bob.login("bob")
        a_sess = yield from alice.open(app.app_id)
        b_sess = yield from bob.open(app.app_id)
        sid = yield from a_sess.schedule("status", {}, period=0.5)
        try:
            yield from bob.http.post(
                "/command/unschedule",
                params={"client_id": bob.client_id, "schedule_id": sid})
        except HttpError as exc:
            return exc.status

    assert run(collab, scenario()) == 403


def test_mutating_schedule_stops_on_lost_lock(site):
    """A scheduled set_param stops (with an error on the poll stream) when
    the client does not hold the lock."""
    collab, app = site
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        # no lock acquired: the first firing fails and kills the schedule
        yield from session.schedule("set_param",
                                    {"name": "gain", "value": 5.0},
                                    period=0.5)
        yield collab.sim.timeout(2.0)
        while (yield from portal.poll(max_items=64)):
            pass
        errors = [m for m in portal._responses.values()
                  if m.type_name() == "ErrorMessage"]
        sched_errors = [m for m in errors if m.code == "SCHEDULE"]
        return len(sched_errors)

    assert run(collab, scenario()) == 1
    assert app.gain.value == 1.0  # never actually steered


def test_logout_cancels_schedules(site):
    collab, app = site
    portal = collab.add_portal(0)
    server = collab.server_of(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        yield from session.schedule("status", {}, period=0.5)
        n_live = len(server._schedules)
        yield from portal.logout()
        yield collab.sim.timeout(1.0)
        return (n_live, len(server._schedules))

    n_before, n_after = run(collab, scenario())
    assert n_before == 1
    assert n_after == 0


def test_schedule_works_for_remote_app():
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    collab.run_bootstrap()
    app = collab.add_app(1, SyntheticApp, "remote-sched",
                         acl={"alice": "write"}, config=cfg())
    collab.sim.run(until=3.0)
    portal = collab.add_portal(0)

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        yield from session.schedule("read_sensor", {"name": "counter"},
                                    period=0.5, count=3)
        yield collab.sim.timeout(4.0)
        while (yield from portal.poll(max_items=64)):
            pass
        return len(portal._responses)

    assert run(collab, scenario()) == 3


def test_schedule_invalid_period(site):
    collab, app = site
    portal = collab.add_portal(0)
    from repro.web import HttpError

    def scenario():
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        try:
            yield from session.schedule("status", {}, period=-1.0)
        except HttpError as exc:
            return exc.status

    assert run(collab, scenario()) == 400
