"""ApplicationProxy: the per-application context object at its home server.

§4.1: "An ApplicationProxy object is created at the server for each active
application, and is given a unique identifier.  This object encapsulates
the entire context for the application."  It owns command buffering across
the application's compute/interaction phases (the DaemonServlet behaviour)
and the set of remote servers subscribed to the application's updates.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional, Set

from repro.steering.lifecycle import COMPUTING, INTERACTING
from repro.wire import CommandMessage, UpdateMessage

if TYPE_CHECKING:  # pragma: no cover
    pass


class ApplicationProxy:
    """Home-server context for one registered application."""

    def __init__(self, app_id: str, app_name: str, interface: dict,
                 acl: dict, app_host: str, app_port: int, owner: str,
                 forward: Callable[[str, int, CommandMessage], None]) -> None:
        self.app_id = app_id
        self.app_name = app_name
        self.interface = interface
        self.acl = dict(acl)
        self.app_host = app_host
        self.app_port = app_port
        #: the user-id that owns the application (first WRITE user, §6.3)
        self.owner = owner
        self._forward = forward
        #: the application's current phase, per its control-channel events
        self.phase = COMPUTING
        #: commands buffered while the application computes (§4.1)
        self.pending: Deque[CommandMessage] = deque()
        #: latest update payload, served to newly connecting clients
        self.last_update: Optional[UpdateMessage] = None
        #: recent updates kept for polling peers (§5.2.3's "CorbaProxy
        #: objects poll each other" mode; bounded ring)
        self.update_history: Deque[UpdateMessage] = deque(maxlen=64)
        #: peer servers subscribed to this application's updates
        self.remote_subscribers: Set[str] = set()
        self.active = True
        # counters
        self.commands_forwarded = 0
        self.commands_buffered = 0
        self.updates_received = 0

    # -- command path ----------------------------------------------------
    def deliver_command(self, cmd: CommandMessage) -> bool:
        """Forward now (interaction phase) or buffer (compute phase).

        Returns True if forwarded immediately.
        """
        if not self.active:
            raise RuntimeError(f"application {self.app_id} is not active")
        if self.phase == INTERACTING:
            self._send(cmd)
            return True
        self.pending.append(cmd)
        self.commands_buffered += 1
        return False

    def _send(self, cmd: CommandMessage) -> None:
        cmd.app_id = self.app_id
        self._forward(self.app_host, self.app_port, cmd)
        self.commands_forwarded += 1

    # -- application events ------------------------------------------------
    def on_phase(self, phase: str) -> int:
        """Track a phase change; flush buffered commands on interaction.

        Returns the number of commands flushed.
        """
        self.phase = phase
        flushed = 0
        if phase == INTERACTING:
            while self.pending:
                self._send(self.pending.popleft())
                flushed += 1
        return flushed

    def on_update(self, update: UpdateMessage) -> None:
        """Record the latest state the application pushed."""
        self.last_update = update
        self.update_history.append(update)
        self.updates_received += 1

    def updates_since(self, seq: int) -> list:
        """Updates newer than ``seq`` still in the ring (for polling peers)."""
        return [u for u in self.update_history if u.seq > seq]

    def mark_stopped(self) -> None:
        """The application deregistered; reject further commands."""
        self.active = False
        self.pending.clear()

    # -- subscriptions -------------------------------------------------------
    def subscribe_server(self, server_name: str) -> None:
        self.remote_subscribers.add(server_name)

    def unsubscribe_server(self, server_name: str) -> None:
        self.remote_subscribers.discard(server_name)

    def descriptor(self) -> dict:
        """JSON-safe construction record for the durable state plane.

        Captures what it takes to rebuild this proxy at the same server
        after a crash — identity, endpoint, ACL.  Runtime state (phase,
        pending commands, update ring) is transient: the application's
        next phase/update events refresh it.
        """
        return {
            "app_id": self.app_id,
            "app_name": self.app_name,
            "interface": dict(self.interface),
            "acl": dict(self.acl),
            "app_host": self.app_host,
            "app_port": self.app_port,
            "owner": self.owner,
        }

    def summary(self, privilege: Optional[str] = None) -> dict:
        """Wire-safe descriptor for application listings."""
        info = {
            "app_id": self.app_id,
            "name": self.app_name,
            "active": self.active,
            "phase": self.phase,
        }
        if privilege is not None:
            info["privilege"] = privilege
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ApplicationProxy {self.app_id} ({self.app_name})>"
