"""Client-side portal API — the paper's web-based thin client.

:class:`DiscoverPortal` wraps the HTTP conversation with a DISCOVER server
(login, application listing/selection) and :class:`AppSession` wraps one
application's steering session (commands, locks, polling, collaboration,
replay).  Received messages are dispatched on their class name exactly like
the paper's portal did with Java reflection (§4.1).
"""

from repro.client.portal import AppSession, DiscoverPortal, PortalError

__all__ = ["AppSession", "DiscoverPortal", "PortalError"]
