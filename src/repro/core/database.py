"""A miniature record store — the reproduction's "Relational Database".

§6.3: "The current implementation of DISCOVER avoids these issues by using
Relational Databases to store all the data generated in the form of
records ... the local server creates the output files or the records under
the ownership of the user who requested that data", while periodic
application data is owned by the application's owner and readable by every
user on the application's ACL.

We keep exactly that model: named tables of append-only records with an
``owner`` and a ``readers`` set enforced on query.

When wired to a :class:`~repro.storage.StateJournal`, every insert is
journaled as a ``"db.insert"`` record and the whole store serializes to /
rebuilds from a snapshot document, so a restarted server recovers its
archive from ``snapshot + WAL tail``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Set

from repro.storage import NULL_JOURNAL


class DatabaseError(Exception):
    """Unknown table, or a read denied by record ownership."""


class _Sequence:
    """A record-id counter that can skip forward during recovery."""

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def take(self) -> int:
        n = self._next
        self._next += 1
        return n

    def advance_past(self, n: int) -> None:
        """Never hand out an id at or below ``n`` again."""
        if n >= self._next:
            self._next = n + 1


_record_seq = _Sequence(1)


@dataclass
class Record:
    """One stored row."""

    record_id: int
    owner: str
    created_at: float
    data: dict
    readers: Set[str] = field(default_factory=set)

    def readable_by(self, user: str) -> bool:
        """Owners always read their records; others need reader rights."""
        return user == self.owner or user in self.readers or "*" in self.readers


class Table:
    """An append-only table of records."""

    def __init__(self, name: str, journal=NULL_JOURNAL) -> None:
        self.name = name
        self.journal = journal
        self._records: List[Record] = []

    def insert(self, owner: str, data: dict, created_at: float,
               readers: Optional[Iterable[str]] = None) -> Record:
        rec = Record(_record_seq.take(), owner, created_at, dict(data),
                     set(readers or ()))
        self._records.append(rec)
        self.journal.append("db.insert", {
            "table": self.name, "record_id": rec.record_id,
            "owner": rec.owner, "created_at": rec.created_at,
            "data": dict(rec.data), "readers": sorted(rec.readers)})
        return rec

    def restore(self, record_id: int, owner: str, data: dict,
                created_at: float,
                readers: Optional[Iterable[str]] = None) -> Record:
        """Re-insert a journaled record under its original id."""
        rec = Record(record_id, owner, created_at, dict(data),
                     set(readers or ()))
        self._records.append(rec)
        _record_seq.advance_past(record_id)
        return rec

    def select(self, user: str,
               predicate: Optional[Callable[[Record], bool]] = None,
               limit: Optional[int] = None) -> List[Record]:
        """Records readable by ``user`` matching ``predicate`` (in order)."""
        out: List[Record] = []
        if limit is not None and limit <= 0:
            return out
        for rec in self._records:
            if not rec.readable_by(user):
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
            if limit is not None and len(out) >= limit:
                break
        return out

    def tail(self, user: str, n: int,
             predicate: Optional[Callable[[Record], bool]] = None) -> List[Record]:
        """The last ``n`` readable records matching ``predicate``."""
        if n <= 0:
            return []
        out = [r for r in self._records
               if r.readable_by(user)
               and (predicate is None or predicate(r))]
        return out[-n:]

    def count(self, predicate: Optional[Callable[[Record], bool]] = None) -> int:
        """How many records the table holds, regardless of ownership.

        A bookkeeping query (no ACL filter) for components that own the
        table's contents — counting is not reading record data.
        """
        if predicate is None:
            return len(self._records)
        return sum(1 for r in self._records if predicate(r))

    def __len__(self) -> int:
        return len(self._records)


class Database:
    """Named tables for one server."""

    def __init__(self, journal=NULL_JOURNAL) -> None:
        self.journal = journal
        self._tables: Dict[str, Table] = {}

    def table(self, name: str) -> Table:
        """Get (creating on first use) a table."""
        tbl = self._tables.get(name)
        if tbl is None:
            tbl = self._tables[name] = Table(name, journal=self.journal)
        return tbl

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # -- durable state plane hooks --------------------------------------
    def snapshot_state(self) -> dict:
        """Serialize every table to a JSON-safe document."""
        return {name: [{"record_id": r.record_id, "owner": r.owner,
                        "created_at": r.created_at, "data": dict(r.data),
                        "readers": sorted(r.readers)}
                       for r in tbl._records]
                for name, tbl in self._tables.items()}

    def restore_state(self, state: dict) -> None:
        """Rebuild every table from a :meth:`snapshot_state` document."""
        for name, rows in state.items():
            tbl = self.table(name)
            for row in rows:
                tbl.restore(row["record_id"], row["owner"], row["data"],
                            row["created_at"], row.get("readers"))

    def apply_event(self, event: str, data: dict, at: float) -> None:
        """Replay one journaled mutation (WAL tail during recovery)."""
        if event == "insert":
            self.table(data["table"]).restore(
                data["record_id"], data["owner"], data["data"],
                data["created_at"], data.get("readers"))
