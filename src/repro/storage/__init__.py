"""The durable state plane: WAL + snapshots behind a storage interface.

The paper's stateful handlers (§5.2.4 locks, §5.2.5 archival, §4.1
application proxies, collaboration groups) were process memory — PR 5's
fault-injection story therefore stopped at "failover to a replica";
nothing ever came back.  Grid middleware survives because its state
planes are durable catalogs, not heap objects.  This package makes the
server's planes exactly that:

- :class:`StorageBackend` — the medium interface: an append-only WAL
  region plus one snapshot slot.  :class:`MemoryBackend` (the default;
  models a durable device that outlives the server object because the
  deployment holds it) and :class:`JsonlBackend` (a directory with
  ``wal.jsonl`` + ``snapshot.json``, atomic rewrites) implement it.
- :class:`StateJournal` — the façade the server talks to.  Planes
  register ``(snapshot, restore, apply)`` hooks; mutations are journaled
  as ``plane.event`` records; every ``snapshot_every`` appends the
  journal serializes all plane state and compacts the WAL; and
  :meth:`StateJournal.recover` rebuilds everything from
  ``snapshot + WAL tail`` on restart.
- :data:`NULL_JOURNAL` — the no-op used by standalone components, so
  journaling never needs a None check on the hot path.

Journaling is zero-event bookkeeping (like tracing): it schedules no
simulator events and touches no wire payloads, so golden tables are
unaffected whatever the backend.
"""

from repro.storage.backends import (
    JsonlBackend,
    MemoryBackend,
    StorageBackend,
    StorageError,
)
from repro.storage.journal import (
    DEFAULT_SNAPSHOT_EVERY,
    NULL_JOURNAL,
    NullJournal,
    RecoveryReport,
    StateJournal,
)

__all__ = [
    "DEFAULT_SNAPSHOT_EVERY",
    "JsonlBackend",
    "MemoryBackend",
    "NULL_JOURNAL",
    "NullJournal",
    "RecoveryReport",
    "StateJournal",
    "StorageBackend",
    "StorageError",
]
