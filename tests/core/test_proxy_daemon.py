"""Unit tests for ApplicationProxy buffering and the daemon protocol."""

import pytest

from repro.core.daemon import home_server_of
from repro.core.proxy import ApplicationProxy
from repro.steering.lifecycle import COMPUTING, INTERACTING
from repro.wire import CommandMessage


def make_proxy(sent):
    return ApplicationProxy(
        "srv#a1", "wave", {"parameters": []}, {"alice": "write"},
        app_host="apphost", app_port=20000, owner="alice",
        forward=lambda host, port, cmd: sent.append((host, port, cmd)))


def test_home_server_extraction():
    assert home_server_of("rutgers-server#a7") == "rutgers-server"
    assert home_server_of("srv#a1") == "srv"


def test_commands_buffer_during_compute():
    sent = []
    proxy = make_proxy(sent)
    assert proxy.phase == COMPUTING
    cmd = CommandMessage("get_param", {"name": "x"})
    assert proxy.deliver_command(cmd) is False
    assert sent == []
    assert proxy.commands_buffered == 1
    assert len(proxy.pending) == 1


def test_commands_forward_during_interaction():
    sent = []
    proxy = make_proxy(sent)
    proxy.on_phase(INTERACTING)
    cmd = CommandMessage("get_param", {"name": "x"})
    assert proxy.deliver_command(cmd) is True
    assert len(sent) == 1
    host, port, forwarded = sent[0]
    assert (host, port) == ("apphost", 20000)
    assert forwarded.app_id == "srv#a1"


def test_phase_transition_flushes_buffer_in_order():
    sent = []
    proxy = make_proxy(sent)
    c1 = CommandMessage("a")
    c2 = CommandMessage("b")
    proxy.deliver_command(c1)
    proxy.deliver_command(c2)
    flushed = proxy.on_phase(INTERACTING)
    assert flushed == 2
    assert [c.command for (_, _, c) in sent] == ["a", "b"]
    assert len(proxy.pending) == 0
    # back to compute: buffering resumes
    proxy.on_phase(COMPUTING)
    proxy.deliver_command(CommandMessage("c"))
    assert len(proxy.pending) == 1


def test_stopped_proxy_rejects_commands():
    proxy = make_proxy([])
    proxy.deliver_command(CommandMessage("x"))
    proxy.mark_stopped()
    assert len(proxy.pending) == 0  # cleared
    with pytest.raises(RuntimeError):
        proxy.deliver_command(CommandMessage("y"))


def test_on_update_tracks_latest():
    from repro.wire import UpdateMessage
    proxy = make_proxy([])
    u1 = UpdateMessage(payload=1, seq=1)
    u2 = UpdateMessage(payload=2, seq=2)
    proxy.on_update(u1)
    proxy.on_update(u2)
    assert proxy.last_update is u2
    assert proxy.updates_received == 2


def test_remote_subscriber_management():
    proxy = make_proxy([])
    proxy.subscribe_server("peer-1")
    proxy.subscribe_server("peer-1")  # idempotent
    proxy.subscribe_server("peer-2")
    assert proxy.remote_subscribers == {"peer-1", "peer-2"}
    proxy.unsubscribe_server("peer-1")
    assert proxy.remote_subscribers == {"peer-2"}


def test_summary_shape():
    proxy = make_proxy([])
    s = proxy.summary("write")
    assert s == {"app_id": "srv#a1", "name": "wave", "active": True,
                 "phase": COMPUTING, "privilege": "write"}
    assert "privilege" not in proxy.summary()


# -- daemon protocol through a live server ------------------------------

def test_daemon_assigns_sequential_app_ids():
    from repro import AppConfig, build_single_server
    from repro.apps import SyntheticApp

    collab = build_single_server()
    collab.run_bootstrap()
    cfg = AppConfig(steps_per_phase=1, step_time=0.01,
                    interaction_window=0.02)
    a1 = collab.add_app(0, SyntheticApp, "one", acl={"u": "write"},
                        config=cfg)
    a2 = collab.add_app(0, SyntheticApp, "two", acl={"u": "write"},
                        config=cfg)
    collab.sim.run(until=2.0)
    server = collab.domains[0].server.name
    assert a1.app_id == f"{server}#a1"
    assert a2.app_id == f"{server}#a2"


def test_daemon_rejects_bad_app_token():
    from repro import AppConfig, build_single_server
    from repro.apps import SyntheticApp

    collab = build_single_server()
    collab.run_bootstrap()
    server = collab.server_of(0)
    server.security.app_tokens["impostor"] = "the-real-token"
    app = collab.add_app(0, SyntheticApp, "impostor",
                         acl={"u": "write"},
                         config=AppConfig(register_timeout=5.0),
                         auth_token="wrong-token")
    collab.sim.run(until=8.0)
    assert not app.registered
    assert app.state == "stopped"
    assert server.local_proxies == {}


def test_app_deregisters_after_total_steps():
    from repro import AppConfig, build_single_server
    from repro.apps import SyntheticApp

    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(
        0, SyntheticApp, "finite", acl={"u": "write"},
        config=AppConfig(steps_per_phase=5, step_time=0.01,
                         interaction_window=0.01, total_steps=10))
    collab.sim.run(until=5.0)
    assert app.state == "stopped"
    assert app.step_index == 10
    server = collab.server_of(0)
    proxy = server.local_proxies[app.app_id]
    assert not proxy.active
