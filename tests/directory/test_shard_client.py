"""Shard servant + DirectoryClient: replication, failover, epochs, cache."""

import pytest

from repro.directory import DirectoryClient, DirectoryPlane, HashRing
from repro.metrics import DirectoryMetrics
from repro.net import Network
from repro.orb import CommFailure, Orb
from repro.sim import Simulator
from tests.conftest import drive


def make_plane(n_shards=3, replicas=2):
    sim = Simulator()
    net = Network(sim)
    net.add_host("client-host")
    plane = DirectoryPlane(replicas=replicas)
    orbs = {}
    for i in range(n_shards):
        host = net.add_host(f"d{i}")
        net.add_link("client-host", host.name, 0.001)
        orbs[host.name] = Orb(host)
        plane.add_shard(host.name, orbs[host.name])
    client_orb = Orb(net.hosts["client-host"])
    return sim, net, plane, client_orb, orbs


def publish(sim, client, app_id="s1#a1", server="s1",
            acl={"alice": "write", "bob": "read"}):
    drive(sim, client.publish_app(app_id, server, "wave", dict(acl)))


def test_write_through_then_lookup_via_another_client():
    sim, net, plane, orb, _ = make_plane()
    writer = plane.make_client(orb, metrics=DirectoryMetrics())
    reader = plane.make_client(orb, metrics=DirectoryMetrics())
    publish(sim, writer)
    assert drive(sim, reader.authenticate("alice")) is True
    assert drive(sim, reader.authenticate("eve")) is False
    apps = drive(sim, reader.lookup("alice"))
    assert [a["app_id"] for a in apps] == ["s1#a1"]
    assert drive(sim, reader.locate_app("s1#a1")) == "s1"
    assert plane.app_count() == 1


def test_withdraw_app_cleans_user_entries():
    sim, net, plane, orb, _ = make_plane()
    client = plane.make_client(orb, metrics=DirectoryMetrics())
    publish(sim, client)
    drive(sim, client.withdraw_app("s1#a1"))
    assert drive(sim, client.lookup("alice")) == []
    assert plane.app_count() == 0


def test_withdraw_server_drops_everything_it_published():
    sim, net, plane, orb, _ = make_plane()
    client = plane.make_client(orb, metrics=DirectoryMetrics())
    publish(sim, client, app_id="s1#a1")
    publish(sim, client, app_id="s1#a2", acl={"carol": "read"})
    publish(sim, client, app_id="s2#a1", server="s2")
    assert drive(sim, client.withdraw_server("s1")) == 2
    assert plane.app_count() == 1
    assert drive(sim, client.lookup("carol")) == []
    # alice keeps her s2 entry
    assert [a["app_id"] for a in drive(sim, client.lookup("alice"))] \
        == ["s2#a1"]


def test_read_fails_over_when_primary_replica_dies():
    sim, net, plane, orb, _ = make_plane()
    metrics = DirectoryMetrics()
    client = plane.make_client(orb, metrics=metrics, call_timeout=2.0)
    publish(sim, client)
    primary = plane.ring.replicas_of("alice", 2)[0]
    plane.kill_shard(primary)
    assert drive(sim, client.authenticate("alice")) is True
    assert metrics.get("read_failovers") >= 1
    assert primary not in plane.live_shards


def test_write_skips_dead_replica_but_succeeds():
    sim, net, plane, orb, _ = make_plane()
    metrics = DirectoryMetrics()
    client = plane.make_client(orb, metrics=metrics, call_timeout=2.0)
    victim = plane.ring.replicas_of("s1#a1", 2)[0]
    plane.kill_shard(victim)
    publish(sim, client)
    assert metrics.get("write_skips") >= 1
    # the surviving replica still answers reads
    assert drive(sim, client.locate_app("s1#a1")) == "s1"


def test_all_replicas_dead_raises_commfailure():
    sim, net, plane, orb, _ = make_plane()
    client = plane.make_client(orb, metrics=DirectoryMetrics(),
                               call_timeout=2.0)
    publish(sim, client)
    for shard in plane.ring.replicas_of("alice", 2):
        plane.kill_shard(shard)
    with pytest.raises(CommFailure):
        drive(sim, client.authenticate("alice"))


def test_stale_epoch_rejected_then_retried_after_refresh():
    sim, net, plane, orb, orbs = make_plane(n_shards=3)
    writer = plane.make_client(orb, metrics=DirectoryMetrics())
    publish(sim, writer)
    # a client still routing on a pre-join ring: same nodes, older epoch
    stale_ring = HashRing(sorted(plane.ring.nodes))
    host = net.add_host("d9")
    net.add_link("client-host", "d9", 0.001)
    plane.add_shard("d9", Orb(host))  # servants move to the new epoch
    assert stale_ring.epoch < plane.ring.epoch
    metrics = DirectoryMetrics()
    client = DirectoryClient(orb, stale_ring, plane.refs, replicas=2,
                             metrics=metrics, refresh=lambda: plane.ring)
    assert drive(sim, client.authenticate("alice")) is True
    assert metrics.get("stale_epoch_retries") == 1
    assert client.ring is plane.ring  # refresh adopted the live ring


def test_stub_cache_is_bounded_and_counts_evictions():
    sim, net, plane, orb, _ = make_plane(n_shards=4, replicas=1)
    metrics = DirectoryMetrics()
    client = DirectoryClient(orb, plane.ring, plane.refs,
                             metrics=metrics, stub_cache_size=2)
    for shard in plane.ring.nodes:
        assert client._stub(shard) is not None
    assert len(client._stubs) == 2
    assert metrics.get("stub_evictions") == 2


def test_stub_cache_counts_hits_and_misses():
    sim, net, plane, orb, _ = make_plane(n_shards=2, replicas=1)
    metrics = DirectoryMetrics()
    client = DirectoryClient(orb, plane.ring, plane.refs,
                             metrics=metrics)
    shard = plane.ring.nodes[0]
    client._stub(shard)  # cold: builds the stub
    client._stub(shard)
    client._stub(shard)
    assert metrics.get("stub_cache_misses") == 1
    assert metrics.get("stub_cache_hits") == 2
    # a ref change (shard replacement) makes the cached stub stale — the
    # rebuild is a miss, not a hit
    client.refs[shard] = plane.refs[plane.ring.nodes[1]]
    client._stub(shard)
    assert metrics.get("stub_cache_misses") == 2
    assert metrics.get("stub_cache_hits") == 2


def test_epoch_change_invalidates_cached_stubs():
    sim, net, plane, orb, _ = make_plane()
    metrics = DirectoryMetrics()
    client = plane.make_client(orb, metrics=metrics)
    publish(sim, client)
    assert client._stubs
    host = net.add_host("d9")
    net.add_link("client-host", "d9", 0.001)
    plane.add_shard("d9", Orb(host))
    assert drive(sim, client.authenticate("alice")) is True
    assert metrics.get("epoch_invalidations") >= 1


def test_plane_snapshot_shape():
    sim, net, plane, orb, _ = make_plane()
    client = plane.make_client(orb, metrics=DirectoryMetrics())
    publish(sim, client)
    snap = plane.snapshot()
    assert snap["shards"] == 3 and snap["replicas"] == 2
    assert snap["apps"] == 1 and snap["killed"] == []
    assert set(snap["per_shard"]) == set(plane.ring.nodes)
