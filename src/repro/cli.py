"""Command-line interface: quick demos and experiment runs.

::

    python -m repro info                      # version + layer map
    python -m repro demo                      # end-to-end steering demo
    python -m repro experiments               # list runnable experiments
    python -m repro run E2 [--quick]          # regenerate one table
    python -m repro trace                     # trace a cross-server command
    python -m repro trace --view critical-path
    python -m repro trace --chrome trace.json # open in ui.perfetto.dev
    python -m repro status [--prom]           # fleet health after a fault
    python -m repro alerts                    # SLO alert fire/resolve log
    python -m repro tsdb                      # telemetry-drill quantile table
    python -m repro tsdb --series pipeline.latency.http   # one range dump
    python -m repro tsdb --chrome counters.json  # Perfetto counter tracks
    python -m repro costs                     # per-principal cost attribution
    python -m repro costs --export costs.json # snapshot for the cost gate
    python -m repro profile                   # sampled kernel-dispatch profile
    python -m repro profile --collapsed out.folded  # flamegraph.pl input
    python -m repro profile --chrome prof.json      # ui.perfetto.dev

The full experiment suite (every table, with shape assertions) lives in
``benchmarks/`` and runs under ``pytest benchmarks/ --benchmark-only -s``;
this CLI exposes the core sweeps for interactive exploration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Tuple

from repro.bench.report import format_pipeline_summary, format_table
from repro.bench.scenarios import (
    run_app_scalability,
    run_client_scalability,
    run_collab_scenario,
    run_remote_vs_local,
)


def _exp_e1(quick: bool) -> Tuple[List[dict], List[str]]:
    sweep = (10, 40, 60) if quick else (10, 20, 30, 40, 50, 60, 70)
    duration = 10.0 if quick else 20.0
    rows = [run_app_scalability(n, duration=duration) for n in sweep]
    return rows, ["n_apps", "mean_lag_ms", "p90_lag_ms",
                  "throughput_per_s", "saturated"]


def _exp_e2(quick: bool) -> Tuple[List[dict], List[str]]:
    sweep = (5, 20, 30) if quick else (5, 10, 15, 20, 25, 30, 40)
    duration = 10.0 if quick else 20.0
    rows = [run_client_scalability(n, duration=duration) for n in sweep]
    return rows, ["n_clients", "mean_rtt_ms", "p90_rtt_ms", "polls"]


def _exp_e4(quick: bool) -> Tuple[List[dict], List[str]]:
    duration = 10.0 if quick else 20.0
    rows = [run_collab_scenario(mode=m, duration=duration,
                                wan_latency=0.060)
            for m in ("central", "p2p")]
    return rows, ["mode", "clients", "wan_messages", "wan_bytes",
                  "mean_update_latency_ms"]


def _exp_e5(quick: bool) -> Tuple[List[dict], List[str]]:
    duration = 10.0 if quick else 20.0
    lats = (0.020, 0.120) if quick else (0.020, 0.060, 0.120)
    rows = [run_collab_scenario(mode=m, duration=duration, wan_latency=w)
            for w in lats for m in ("central", "p2p")]
    return rows, ["mode", "wan_latency_ms", "mean_update_latency_ms",
                  "p90_update_latency_ms"]


def _exp_e6(quick: bool) -> Tuple[List[dict], List[str]]:
    duration = 10.0 if quick else 20.0
    rows = [run_remote_vs_local(remote=r, duration=duration)
            for r in (False, True)]
    return rows, ["placement", "mean_steer_rtt_ms", "p90_steer_rtt_ms",
                  "throughput_per_s"]


def _exp_e11(quick: bool) -> Tuple[List[dict], List[str]]:
    from repro.bench.fleet import run_fleet_directory
    if quick:
        sweeps = ((10, 1000, 4), (20, 1000, 4))
    else:
        sweeps = ((50, 20_000, 8), (100, 20_000, 8), (200, 20_000, 8))
    rows = [run_fleet_directory(n, n_sessions=s, directory_shards=shards)
            for n, s, shards in sweeps]
    return rows, ["n_servers", "n_shards", "sessions", "sessions_done",
                  "sessions_failed", "lookup_p50_ms", "lookup_p99_ms",
                  "shard_load_max_over_mean"]


def _exp_e12(quick: bool) -> Tuple[List[dict], List[str]]:
    from repro.bench.scenarios import run_recovery_drill
    n_commands = 10 if quick else 25
    row, collab = run_recovery_drill(n_commands=n_commands)
    collab.stop()
    return [row], ["victim", "pre_sessions", "recovered_sessions",
                   "lock_preserved", "groups_preserved",
                   "recovered_interactions", "wal_replayed",
                   "catchup_records", "recovery_wall_ms"]


def _exp_e13(quick: bool) -> Tuple[List[dict], List[str]]:
    from repro.bench.scenarios import run_telemetry_drill
    duration = 15.0 if quick else 30.0
    kill_at = 5.0 if quick else 10.0
    row, collab, _merged = run_telemetry_drill(duration=duration,
                                               kill_at=kill_at)
    collab.stop()
    return [row], ["victim", "bucket_width_s", "kill_at_s",
                   "breach_delay_s", "p99_baseline_ms", "p99_recovered_ms",
                   "p99_ratio", "commands_ok", "commands_failed",
                   "merged_series", "merged_points"]


def _run_e14(quick: bool, profiler=None):
    from repro.bench.fleet import run_noisy_neighbor_drill
    if quick:
        return run_noisy_neighbor_drill(10, n_sessions=300,
                                        directory_shards=4, duration=20.0,
                                        flood_start=5.0, flood_rate=100.0,
                                        profiler=profiler)
    return run_noisy_neighbor_drill(profiler=profiler)


def _exp_e14(quick: bool) -> Tuple[List[dict], List[str]]:
    row, fleet = _run_e14(quick)
    fleet.stop()
    return [row], ["n_servers", "flooder", "flood_lookups",
                   "flood_noise_frames", "partition_exact", "principals",
                   "flooder_top_all_dims", "detection_latency_max_s",
                   "bucket_width_s"]


EXPERIMENTS: Dict[str, Tuple[str, Callable]] = {
    "E1": ("applications per server (>40 supported)", _exp_e1),
    "E2": ("HTTP clients per server (~20, then degradation)", _exp_e2),
    "E4": ("WAN collaboration traffic, central vs P2P", _exp_e4),
    "E5": ("client update latency vs WAN distance", _exp_e5),
    "E6": ("steering latency, local vs remote application", _exp_e6),
    "E11": ("sharded directory: flat shard load, p99 independent of "
            "fleet size", _exp_e11),
    "E12": ("kill → restart → recover sessions, locks, archive from "
            "snapshot + WAL", _exp_e12),
    "E13": ("telemetry plane: error-rate breach within one bucket of a "
            "kill, merged p99 recovers within 10%", _exp_e13),
    "E14": ("cost attribution: exact per-principal partition, noisy "
            "neighbor tops every dimension within one bucket", _exp_e14),
}


def cmd_info(_args) -> int:
    import repro
    print(f"repro {repro.__version__} — DISCOVER collaboratory middleware "
          f"(Mann & Parashar, HPDC 2001)")
    print(__doc__)
    return 0


def cmd_experiments(_args) -> int:
    print("runnable experiments (see benchmarks/ for the full suite):")
    for exp_id, (claim, _fn) in EXPERIMENTS.items():
        print(f"  {exp_id}: {claim}")
    return 0


def cmd_run(args) -> int:
    exp_id = args.experiment.upper()
    entry = EXPERIMENTS.get(exp_id)
    if entry is None:
        print(f"unknown experiment {exp_id!r}; try `experiments`",
              file=sys.stderr)
        return 2
    claim, fn = entry
    rows, columns = fn(args.quick)
    print(format_table(rows, columns, title=f"{exp_id}: {claim}"))
    summary = format_pipeline_summary(rows)
    if summary:
        print(summary)
    return 0


def cmd_trace(args) -> int:
    """Run (or load) a traced scenario and render its span tree."""
    from repro.bench.report import format_registry
    from repro.obs import (
        export_chrome,
        export_jsonl,
        format_critical_path,
        format_trace_summary,
        format_trace_tree,
        load_jsonl,
    )

    registry = None
    if args.input:
        store = load_jsonl(args.input)
        print(f"loaded {len(store)} spans "
              f"({len(store.trace_ids())} traces) from {args.input}")
    else:
        from repro.bench.scenarios import run_traced_remote_command
        row, tracer, registry = run_traced_remote_command(
            wan_latency=args.wan_latency)
        store = tracer.store
        print(f"traced cross-server steer: result={row['result']} "
              f"virtual_time={row['virtual_time_s']:.3f}s "
              f"spans={row['spans_recorded']} "
              f"traces={row['traces_recorded']}")

    if args.trace_id is not None:
        trace_id = args.trace_id
    else:
        # default to the client-visible command trace when present
        trace_id = store.trace_of_root("portal.command")
        if trace_id is None and store.trace_ids():
            trace_id = store.trace_ids()[0]
    if trace_id is None:
        print("no traces recorded (sampling off?)", file=sys.stderr)
        return 1

    print()
    if args.view == "summary":
        print(format_trace_summary(store))
    elif args.view == "dump":
        print(format_trace_tree(store, trace_id))
    else:  # critical-path
        print(format_trace_tree(store, trace_id))
        print()
        print(format_critical_path(store, trace_id))

    if args.export:
        export_jsonl(store, args.export)
        print(f"\nspans exported to {args.export} (JSONL)")
    if args.chrome:
        export_chrome(store, args.chrome)
        print(f"\nChrome trace written to {args.chrome} "
              f"— open in ui.perfetto.dev")
    if registry is not None and args.metrics:
        print("\nunified metrics snapshot:")
        print(format_registry(registry))
    return 0


def _fault_deployment(args):
    """Run the E10 fault-injection scenario the status views render from."""
    from repro.bench.scenarios import run_fault_injection
    duration = 15.0 if args.quick else 30.0
    kill_at = 5.0 if args.quick else 10.0
    return run_fault_injection(duration=duration, kill_at=kill_at)


def cmd_status(args) -> int:
    """Fleet health after the fault-injection scenario (operator view)."""
    from repro.bench.scenarios import scrape_status

    row, collab = _fault_deployment(args)
    if args.prom:
        print(scrape_status(collab, params={"format": "prom"}))
        return 0
    body = scrape_status(collab)
    print(f"status of {body['server']} at sim-time {body['time']:.2f}s")
    fleet = body["health"]["fleet"]
    rows = [{"component": key, "status": status}
            for key, status in sorted(fleet.items())]
    print(format_table(rows, ["component", "status"], title="fleet health"))
    slo_rows = [{"slo": name, **detail}
                for name, detail in sorted(body["slo"].items())]
    if slo_rows:
        print(format_table(slo_rows,
                           ["slo", "sli", "compliant",
                            "burn_fast", "burn_slow"],
                           title="SLO compliance"))
    print(f"scenario: victim={row['victim']} "
          f"status={row['victim_status']} "
          f"detection_latency_s={row['detection_latency_s']} "
          f"failovers={row['health_failovers']}")
    return 0


def cmd_alerts(args) -> int:
    """Alert history after the fault-injection scenario."""
    from repro.bench.scenarios import scrape_status

    row, collab = _fault_deployment(args)
    body = scrape_status(collab, path="/status/alerts")
    for label in ("active", "history"):
        records = body[label]
        print(f"{label}: {len(records)} alert(s)")
        if records:
            print(format_table(records,
                               ["slo", "severity", "fired_at",
                                "resolved_at", "exemplars"]))
    print(f"scenario: alerts_fired={row['alerts_fired']} "
          f"alerts_resolved={row['alerts_resolved']} "
          f"exemplar_traces={row['alert_exemplars']}")
    return 0


def cmd_tsdb(args) -> int:
    """Query the time-series store (run the E13 drill or load a dump)."""
    import json

    from repro.obs import TimeSeriesRegistry, to_chrome_counters

    if args.input:
        with open(args.input) as fh:
            merged = TimeSeriesRegistry.from_dict(json.load(fh))
        print(f"loaded {len(merged.names())} series from {args.input}")
    else:
        from repro.bench.scenarios import run_telemetry_drill
        duration = 15.0 if args.quick else 30.0
        kill_at = 5.0 if args.quick else 10.0
        row, collab, merged = run_telemetry_drill(duration=duration,
                                                  kill_at=kill_at)
        collab.stop()
        print(f"telemetry drill: victim={row['victim']} "
              f"breach_delay_s={row['breach_delay_s']} "
              f"p99_baseline_ms={row['p99_baseline_ms']} "
              f"p99_recovered_ms={row['p99_recovered_ms']} "
              f"p99_ratio={row['p99_ratio']}")

    if args.series:
        kind = merged.kind(args.series)
        if kind is None:
            print(f"unknown series {args.series!r}; known: "
                  f"{', '.join(merged.names())}", file=sys.stderr)
            return 2
        points = merged.query(args.series, "points", start=args.start,
                              end=args.end, q=args.q)
        if kind == "histogram":
            columns = ["t", "width", "count", "mean", "q", "max"]
        else:
            columns = ["t", "width", "value"]
        print(format_table(points, columns,
                           title=f"{args.series} ({kind}, q={args.q})"))
    else:
        rows = []
        for name in merged.names():
            kind = merged.kind(name)
            if kind == "histogram":
                summary = merged.histogram_summary(name)
                rows.append({"series": name, "kind": kind,
                             "count": summary["count"],
                             "p50": summary["p50"], "p90": summary["p90"],
                             "p99": summary["p99"], "max": summary["max"]})
            else:
                rows.append({"series": name, "kind": kind,
                             "sum": merged.query(name, "sum"),
                             "last": merged.query(name, "instant")})
        print(format_table(rows, ["series", "kind", "count", "sum", "last",
                                  "p50", "p90", "p99", "max"],
                           title="fleet-merged series"))

    if args.export:
        doc = merged.to_dict()
        with open(args.export, "w") as fh:
            json.dump(doc, fh)
        reloaded = TimeSeriesRegistry.from_dict(doc)
        assert reloaded.to_dict() == doc  # export/import is lossless
        print(f"\nstore exported to {args.export} "
              f"(round-trip verified, {len(doc['series'])} series)")
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump({"traceEvents": to_chrome_counters(merged)}, fh)
        print(f"\nChrome counter tracks written to {args.chrome} "
              f"— open in ui.perfetto.dev")
    return 0


def cmd_costs(args) -> int:
    """Per-principal cost attribution from the noisy-neighbor drill."""
    import json

    from repro.obs import format_cost_report

    row, fleet = _run_e14(quick=not args.full)
    ledger = fleet.ledger
    print(f"noisy-neighbor drill: flooder={row['flooder']} "
          f"partition_exact={row['partition_exact']} "
          f"flooder_top_all_dims={row['flooder_top_all_dims']} "
          f"detection_latency_max_s={row['detection_latency_max_s']} "
          f"(bucket_width_s={row['bucket_width_s']})")
    print()
    print(format_cost_report(ledger, top=args.top))
    if args.export:
        snap = ledger.snapshot(top=args.top)
        snap["drill"] = {k: row[k] for k in
                         ("flooder", "partition_exact",
                          "flooder_top_all_dims", "detection_latency_max_s",
                          "bucket_width_s")}
        with open(args.export, "w") as fh:
            json.dump(snap, fh, indent=2, sort_keys=True)
        print(f"\ncost snapshot written to {args.export}")
    fleet.stop()
    return 0


def cmd_profile(args) -> int:
    """Continuous sampling profile of the kernel dispatch loop."""
    import json

    from repro.obs import DispatchProfiler

    profiler = DispatchProfiler(interval_us=args.interval_us)
    if args.scenario == "e14":
        row, fleet = _run_e14(quick=not args.full, profiler=profiler)
        fleet.stop()
        print(f"profiled E14 drill: sessions_done={row['sessions_done']} "
              f"flood_lookups={row['flood_lookups']} "
              f"virtual_duration_s={row['virtual_duration_s']}")
    else:  # e1
        n_apps = 20 if not args.full else 60
        duration = 10.0 if not args.full else 20.0
        row = run_app_scalability(n_apps, duration=duration,
                                  profiler=profiler)
        print(f"profiled E1 run: n_apps={row['n_apps']} "
              f"updates_processed={row['updates_processed']} "
              f"mean_lag_ms={row['mean_lag_ms']:.2f}")

    folds = profiler.top_folds(args.top)
    rows = [{"stack": stack, "samples": samples,
             "wall_us": wall_ns // 1000}
            for stack, samples, wall_ns in folds]
    print()
    print(format_table(rows, ["samples", "wall_us", "stack"],
                       title=f"top {args.top} folds "
                             f"(interval={args.interval_us}us)"))
    if args.collapsed:
        with open(args.collapsed, "w") as fh:
            fh.write(profiler.collapsed())
        print(f"\ncollapsed stacks written to {args.collapsed} "
              f"— feed to flamegraph.pl")
    if args.chrome:
        with open(args.chrome, "w") as fh:
            json.dump(profiler.to_chrome(), fh)
        print(f"\nChrome trace written to {args.chrome} "
              f"— open in ui.perfetto.dev")
    return 0


def cmd_demo(_args) -> int:
    """A compressed version of examples/quickstart.py."""
    from repro import AppConfig, build_single_server
    from repro.apps import SyntheticApp

    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(
        0, SyntheticApp, "demo-sim", acl={"alice": "write"},
        config=AppConfig(steps_per_phase=5, step_time=0.02,
                         interaction_window=0.05))
    collab.sim.run(until=2.0)
    print(f"application registered: {app.app_id}")
    portal = collab.add_portal(0)

    def scenario():
        apps = yield from portal.login("alice")
        print(f"alice sees: {[a['name'] for a in apps]}")
        session = yield from portal.open(app.app_id)
        print(f"lock: {(yield from session.acquire_lock())}")
        value = yield from session.set_param("gain", 2.5)
        print(f"steered gain -> {value}")
        yield portal.sim.timeout(1.0)
        yield from portal.poll(max_items=64)
        print(f"updates received by polling: {len(portal.updates)}")

    collab.sim.run(until=collab.sim.spawn(scenario()))
    print(f"virtual time elapsed: {collab.sim.now:.2f}s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DISCOVER middleware reproduction")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="version and layer map")
    sub.add_parser("demo", help="run the end-to-end steering demo")
    sub.add_parser("experiments", help="list runnable experiments")
    run_p = sub.add_parser("run", help="run one experiment sweep")
    run_p.add_argument("experiment", help="experiment id (e.g. E1)")
    run_p.add_argument("--quick", action="store_true",
                       help="smaller sweep, shorter virtual duration")
    trace_p = sub.add_parser(
        "trace", help="trace a cross-server command and inspect the tree")
    trace_p.add_argument("--input", default=None,
                         help="load spans from a JSONL export instead of "
                              "running the scenario")
    trace_p.add_argument("--wan-latency", type=float, default=0.060,
                         help="one-way WAN latency in seconds "
                              "(default 0.060)")
    trace_p.add_argument("--view", default="critical-path",
                         choices=("summary", "dump", "critical-path"),
                         help="how to render the trace")
    trace_p.add_argument("--trace-id", type=int, default=None,
                         help="inspect a specific trace id")
    trace_p.add_argument("--export", default=None,
                         help="also export all spans as JSONL")
    trace_p.add_argument("--chrome", default=None,
                         help="also export a Chrome trace-event JSON "
                              "(ui.perfetto.dev)")
    trace_p.add_argument("--metrics", action="store_true",
                         help="print the unified metrics snapshot")
    status_p = sub.add_parser(
        "status", help="fleet health view from the fault-injection run")
    status_p.add_argument("--quick", action="store_true",
                          help="shorter virtual run")
    status_p.add_argument("--prom", action="store_true",
                          help="print the Prometheus exposition instead")
    alerts_p = sub.add_parser(
        "alerts", help="alert fire/resolve history from the "
                       "fault-injection run")
    alerts_p.add_argument("--quick", action="store_true",
                          help="shorter virtual run")
    tsdb_p = sub.add_parser(
        "tsdb", help="query the telemetry-drill time-series store")
    tsdb_p.add_argument("--quick", action="store_true",
                        help="shorter virtual run")
    tsdb_p.add_argument("--input", default=None,
                        help="load a previously exported store instead of "
                             "running the drill")
    tsdb_p.add_argument("--series", default=None,
                        help="dump one series' buckets instead of the "
                             "summary table")
    tsdb_p.add_argument("--start", type=float, default=None,
                        help="range start in sim-seconds")
    tsdb_p.add_argument("--end", type=float, default=None,
                        help="range end in sim-seconds")
    tsdb_p.add_argument("--q", type=float, default=0.99,
                        help="quantile for histogram dumps (default 0.99)")
    tsdb_p.add_argument("--export", default=None,
                        help="write the merged store as JSON "
                             "(loadable with --input)")
    tsdb_p.add_argument("--chrome", default=None,
                        help="write Chrome trace-event counter tracks "
                             "(ui.perfetto.dev)")
    costs_p = sub.add_parser(
        "costs", help="per-principal cost attribution from the "
                      "noisy-neighbor drill")
    costs_p.add_argument("--full", action="store_true",
                         help="full E14 scale (50 servers, 2000 sessions)")
    costs_p.add_argument("--top", type=int, default=5,
                         help="heavy hitters per dimension (default 5)")
    costs_p.add_argument("--export", default=None,
                         help="write the ledger snapshot as JSON")
    profile_p = sub.add_parser(
        "profile", help="sampled profile of the kernel dispatch loop")
    profile_p.add_argument("--scenario", default="e1",
                           choices=("e1", "e14"),
                           help="scenario to profile (default e1, "
                                "span-tagged)")
    profile_p.add_argument("--full", action="store_true",
                           help="full-scale scenario run")
    profile_p.add_argument("--interval-us", type=int, default=200,
                           help="virtual sampling interval in "
                                "microseconds (default 200)")
    profile_p.add_argument("--top", type=int, default=10,
                           help="folds to print (default 10)")
    profile_p.add_argument("--collapsed", default=None,
                           help="write collapsed stacks "
                                "(flamegraph.pl input)")
    profile_p.add_argument("--chrome", default=None,
                           help="write a Chrome trace-event JSON "
                                "(ui.perfetto.dev)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "demo": cmd_demo,
        "experiments": cmd_experiments,
        "run": cmd_run,
        "trace": cmd_trace,
        "status": cmd_status,
        "alerts": cmd_alerts,
        "tsdb": cmd_tsdb,
        "costs": cmd_costs,
        "profile": cmd_profile,
        None: cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
