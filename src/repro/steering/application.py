"""Steerable application base class and its home-server protocol.

An application alternates **compute phases** (numerical stepping, virtual
time per step) and **interaction phases**.  The paper's DaemonServlet
"buffers all client requests and sends them to the application when the
application is in the 'interaction' phase.  This ensures that requests are
not lost while the application is busy computing" (§4.1) — so the
application announces its phase transitions on the control channel, and the
server flushes buffered commands only while the application is interacting.

Channel protocol over the custom TCP channel (application → home server's
daemon port):

================  =========================================================
message            meaning
================  =========================================================
RegisterMessage    authenticate and advertise the steering interface + ACL
ControlMessage     ``phase`` events (``interaction`` / ``compute``) and
                   ``deregister``
UpdateMessage      periodic monitored-sensor payload (MainChannel)
ResponseMessage /  reply to a forwarded client command (ResponseChannel)
ErrorMessage
================  =========================================================

Server → application: :class:`~repro.wire.CommandMessage` (CommandChannel).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.sim import AnyOf
from repro.steering.agents import InteractionAgent
from repro.steering.controlnet import ControlNetwork, SteeringError
from repro.steering.lifecycle import (
    COMPUTING,
    INTERACTING,
    PAUSED,
    REGISTERING,
    STOPPED,
)
from repro.wire import (
    AckMessage,
    CommandMessage,
    ControlMessage,
    ErrorMessage,
    RegisterMessage,
    ResponseMessage,
    UpdateMessage,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: the port DISCOVER daemons listen on for application connections
DAEMON_PORT = 7070

_app_ports = itertools.count(20000)


@dataclass
class AppConfig:
    """Timing knobs for the compute/interaction lifecycle."""

    #: numerical steps per compute phase
    steps_per_phase: int = 10
    #: virtual seconds of compute per step
    step_time: float = 0.05
    #: how long each interaction phase stays open for buffered commands
    interaction_window: float = 0.02
    #: virtual seconds to execute one steering command inside the app
    command_service_time: float = 0.002
    #: polling cadence while paused (still serving interaction)
    paused_poll: float = 0.25
    #: stop after this many total steps (None = run until stopped)
    total_steps: Optional[int] = None
    #: give up on registration after this long without an ack
    register_timeout: float = 10.0


class SteerableApplication:
    """Base class for applications steered through DISCOVER.

    Subclasses override :meth:`setup` (register parameters/sensors/
    actuators on ``self.control``) and :meth:`step` (one numerical step).
    """

    def __init__(self, host: "Host", name: str, server_host: str, *,
                 auth_token: str = "", acl: Optional[Dict[str, str]] = None,
                 config: Optional[AppConfig] = None,
                 daemon_port: int = DAEMON_PORT) -> None:
        self.host = host
        self.sim = host.sim
        self.name = name
        self.server_host = server_host
        self.daemon_port = daemon_port
        self.auth_token = auth_token or f"token-{name}"
        self.acl: Dict[str, str] = dict(acl or {})
        self.config = config or AppConfig()
        self.control = ControlNetwork()
        self.agent = InteractionAgent(self)
        self.endpoint = host.bind(next(_app_ports))
        self.state = REGISTERING
        self.app_id: Optional[str] = None
        self.step_index = 0
        self.update_seq = 0
        self.registered = False
        self._proc = None
        self.setup()

    # -- subclass surface ---------------------------------------------------
    def setup(self) -> None:
        """Register steering hooks on ``self.control`` (override)."""

    def step(self, index: int) -> None:
        """Advance the numerical state by one step (override)."""
        raise NotImplementedError

    def update_payload(self) -> dict:
        """Payload of each periodic update: monitored sensors + status."""
        payload = self.control.monitored_views()
        payload["_step"] = self.step_index
        payload["_state"] = self.state
        return payload

    # -- lifecycle control (called by the InteractionAgent) ------------------
    def request_pause(self) -> str:
        if self.state == STOPPED:
            raise SteeringError("application already stopped")
        self.state = PAUSED
        return PAUSED

    def request_resume(self) -> str:
        if self.state == STOPPED:
            raise SteeringError("application already stopped")
        if self.state == PAUSED:
            self.state = INTERACTING
        return self.state

    def request_stop(self) -> str:
        self.state = STOPPED
        return STOPPED

    def status(self) -> dict:
        """Current lifecycle status, wire-safe."""
        return {
            "name": self.name,
            "app_id": self.app_id,
            "state": self.state,
            "step": self.step_index,
            "sim_time": self.sim.now,
        }

    # -- execution -----------------------------------------------------------
    def start(self):
        """Spawn the application's main process; returns it (joinable)."""
        if self._proc is not None:
            raise SteeringError(f"{self.name} already started")
        self._proc = self.sim.spawn(self._run(), name=f"app-{self.name}")
        return self._proc

    @property
    def process(self):
        return self._proc

    def _send(self, msg) -> None:
        msg.sender = self.host.name
        msg.destination = self.server_host
        if self.app_id is not None:
            msg.app_id = self.app_id
        self.endpoint.send(self.server_host, self.daemon_port, msg,
                           channel=msg.channel)

    def _run(self):
        if not (yield from self._register()):
            self.state = STOPPED
            return
        cfg = self.config
        while self.state != STOPPED:
            if self.state != PAUSED:
                yield from self._compute_phase()
                self._send_update()
                if (cfg.total_steps is not None
                        and self.step_index >= cfg.total_steps):
                    self.state = STOPPED
            if self.state == STOPPED:
                break
            yield from self._interaction_phase()
        self._send(ControlMessage("deregister"))
        self._send_update()  # final state so portals see "stopped"

    def _register(self):
        reg = RegisterMessage(self.name, self.auth_token,
                              self.control.interface_descriptor(), self.acl)
        self._send(reg)
        expiry = self.sim.timeout(self.config.register_timeout)
        while True:
            get_ev = self.endpoint.inbox.get()
            fired = yield AnyOf(self.sim, [get_ev, expiry])
            if get_ev not in fired:
                self.endpoint.inbox.cancel(get_ev)
                return False
            frame = fired[get_ev]
            msg = frame.payload
            if isinstance(msg, AckMessage) and msg.request_id == reg.msg_id:
                if not msg.ok:
                    return False
                self.app_id = msg.info
                self.registered = True
                return True
            # anything else pre-registration is dropped

    def _compute_phase(self):
        self.state = COMPUTING
        self._send(ControlMessage("phase", detail=COMPUTING))
        for _ in range(self.config.steps_per_phase):
            self.step(self.step_index)
            self.step_index += 1
            yield self.sim.timeout(self.config.step_time)
            if self.state in (PAUSED, STOPPED):
                break

    def _send_update(self) -> None:
        self.update_seq += 1
        self._send(UpdateMessage(self.update_payload(), seq=self.update_seq,
                                 timestamp=self.sim.now))

    def _interaction_phase(self):
        paused = self.state == PAUSED
        if not paused:
            self.state = INTERACTING
        self._send(ControlMessage("phase", detail=INTERACTING))
        window = (self.config.paused_poll if paused
                  else self.config.interaction_window)
        deadline = self.sim.now + window
        while True:
            remaining = deadline - self.sim.now
            if remaining <= 0:
                break
            get_ev = self.endpoint.inbox.get()
            expiry = self.sim.timeout(remaining)
            fired = yield AnyOf(self.sim, [get_ev, expiry])
            if get_ev in fired:
                yield from self._handle_frame(fired[get_ev])
                if self.state == STOPPED:
                    return
            else:
                self.endpoint.inbox.cancel(get_ev)
                break

    def _handle_frame(self, frame):
        msg = frame.payload
        if not isinstance(msg, CommandMessage):
            return
        if self.config.command_service_time > 0:
            yield self.sim.timeout(self.config.command_service_time)
        try:
            result = self.agent.handle(msg.command, msg.args)
            reply = ResponseMessage(msg.request_id, result,
                                    client_id=msg.client_id)
        except SteeringError as exc:
            reply = ErrorMessage(msg.request_id, str(exc), code="STEERING",
                                 client_id=msg.client_id)
        self._send(reply)
