"""A small self-describing binary serializer.

This is the reproduction's stand-in for Java object serialization (the
servlet tier) and CORBA CDR (the server-to-server tier).  It serves two
purposes:

1. **Byte accounting** — every message that crosses the simulated network is
   charged ``encoded_size(msg)`` bytes, so bandwidth and traffic experiments
   (E3, E4, E11) measure something real rather than guessed constants.
2. **A real codec** — ``decode(encode(x)) == x`` round-trips the full value
   model, which property tests verify with hypothesis.

Format: one type tag byte, then a big-endian payload.  Containers carry a
4-byte element count.  Strings are UTF-8 with a 4-byte length.  NumPy arrays
carry dtype + shape + raw bytes.  Registered application types (messages)
carry their registered name and a dict of fields — comparable in framing
overhead to Java serialization's class descriptors.

Fast path invariant: :func:`encoded_size` computes exact byte counts with a
dedicated size visitor — no encoded bytes are materialized (ndarrays are
sized as ``dtype.itemsize * size`` with no copy) — and is pinned by property
test to ``encoded_size(x) == len(encode(x))`` over the full value model.
:func:`freeze_size` additionally memoizes the size of a registered wire
object, so a message fanned out to N subscribers is walked exactly once;
callers must treat a message as **frozen** (immutable) once it has been
sent or pushed into a fan-out buffer.
"""

from __future__ import annotations

import struct
import weakref
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

# type tag bytes
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_BIGINT = b"J"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_TUPLE = b"t"
_T_DICT = b"M"
_T_NDARRAY = b"A"
_T_OBJECT = b"O"


class SerializationError(Exception):
    """Raised when a value cannot be encoded or a buffer cannot be decoded."""


# Registered application types: name -> (class, to_fields, from_fields)
_registry: Dict[str, Tuple[type, Callable[[Any], dict], Callable[[dict], Any]]] = {}
_by_class: Dict[type, str] = {}
#: sizing metadata per registered class: (encoded key length, to_fields) —
#: ``to_fields`` is None for default codecs, letting the size visitor walk
#: ``vars(obj)`` directly instead of copying it into a fresh dict
_obj_size_info: Dict[type, Tuple[int, Optional[Callable[[Any], dict]]]] = {}


def register_codec(cls: type, name: str | None = None,
                   to_fields: Callable[[Any], dict] | None = None,
                   from_fields: Callable[[dict], Any] | None = None) -> type:
    """Register ``cls`` so instances can cross the wire.

    Defaults assume a ``__dict__``-backed object reconstructable via
    ``cls.__new__`` + attribute assignment (our message classes).  Usable as
    a decorator.
    """
    key = name or cls.__qualname__
    default_fields = to_fields is None
    if to_fields is None:
        to_fields = lambda obj: dict(vars(obj))
    if from_fields is None:
        def from_fields(fields: dict, _cls=cls) -> Any:
            obj = _cls.__new__(_cls)
            obj.__dict__.update(fields)
            return obj
    if key in _registry and _registry[key][0] is not cls:
        raise SerializationError(f"codec name {key!r} already registered")
    _registry[key] = (cls, to_fields, from_fields)
    _by_class[cls] = key
    if not issubclass(cls, (int, float, str, bytes, bytearray, list, tuple,
                            dict, np.ndarray)):
        # encode() would treat instances of builtin subclasses as the
        # builtin (its isinstance chain runs before the registry check),
        # so only plain classes take the object sizing fast path
        _obj_size_info[cls] = (len(key.encode("utf-8")),
                               None if default_fields else to_fields)
    return cls


def _pack_len(n: int) -> bytes:
    return struct.pack(">I", n)


#: test instrumentation: when set, called with each value passed to
#: ``encode`` — the zero-copy loopback contract ("``encode()`` is never
#: called on the send path") is pinned by a test installing a hook here
_encode_hook: Optional[Callable[[Any], None]] = None


def set_encode_hook(
        hook: Optional[Callable[[Any], None]]) -> Optional[Callable]:
    """Install (or clear) the encode-call hook; returns the previous one."""
    global _encode_hook
    previous, _encode_hook = _encode_hook, hook
    return previous


def encode(value: Any) -> bytes:
    """Encode ``value`` to bytes."""
    if _encode_hook is not None:
        _encode_hook(value)
    out: list[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def _encode_into(value: Any, out: list) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if -(2 ** 63) <= value < 2 ** 63:
            out.append(_T_INT)
            out.append(struct.pack(">q", value))
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8 + 1,
                                 "big", signed=True)
            out.append(_T_BIGINT)
            out.append(_pack_len(len(raw)))
            out.append(raw)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out.append(_pack_len(len(raw)))
        out.append(raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out.append(_pack_len(len(value)))
        # already-bytes values go in as-is (no redundant copy)
        out.append(value if type(value) is bytes else bytes(value))
    elif isinstance(value, list):
        out.append(_T_LIST)
        out.append(_pack_len(len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out.append(_pack_len(len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out.append(_pack_len(len(value)))
        for k, v in value.items():
            _encode_into(k, out)
            _encode_into(v, out)
    elif isinstance(value, np.ndarray):
        dtype_name = value.dtype.str.encode("ascii")
        if value.flags.c_contiguous:
            raw = value.tobytes()
        else:
            raw = np.ascontiguousarray(value).tobytes()
        out.append(_T_NDARRAY)
        out.append(_pack_len(len(dtype_name)))
        out.append(dtype_name)
        out.append(_pack_len(value.ndim))
        for dim in value.shape:
            out.append(_pack_len(dim))
        out.append(_pack_len(len(raw)))
        out.append(raw)
    elif isinstance(value, (np.integer,)):
        _encode_into(int(value), out)
    elif isinstance(value, (np.floating,)):
        _encode_into(float(value), out)
    elif type(value) in _by_class:
        key = _by_class[type(value)]
        _cls, to_fields, _from = _registry[key]
        raw_key = key.encode("utf-8")
        out.append(_T_OBJECT)
        out.append(_pack_len(len(raw_key)))
        out.append(raw_key)
        _encode_into(to_fields(value), out)
    else:
        raise SerializationError(
            f"cannot encode value of type {type(value).__name__}: {value!r}")


def decode(buffer: bytes) -> Any:
    """Decode bytes produced by :func:`encode` back to a value."""
    value, offset = _decode_from(buffer, 0)
    if offset != len(buffer):
        raise SerializationError(
            f"{len(buffer) - offset} trailing bytes after decoded value")
    return value


def _read_len(buf: bytes, off: int) -> Tuple[int, int]:
    if off + 4 > len(buf):
        raise SerializationError("truncated length field")
    return struct.unpack_from(">I", buf, off)[0], off + 4


def _decode_from(buf: bytes, off: int) -> Tuple[Any, int]:
    if off >= len(buf):
        raise SerializationError("truncated buffer (no tag)")
    tag = buf[off:off + 1]
    off += 1
    if tag == _T_NONE:
        return None, off
    if tag == _T_TRUE:
        return True, off
    if tag == _T_FALSE:
        return False, off
    if tag == _T_INT:
        if off + 8 > len(buf):
            raise SerializationError("truncated int")
        return struct.unpack_from(">q", buf, off)[0], off + 8
    if tag == _T_BIGINT:
        n, off = _read_len(buf, off)
        if off + n > len(buf):
            raise SerializationError("truncated bigint")
        return int.from_bytes(buf[off:off + n], "big", signed=True), off + n
    if tag == _T_FLOAT:
        if off + 8 > len(buf):
            raise SerializationError("truncated float")
        return struct.unpack_from(">d", buf, off)[0], off + 8
    if tag == _T_STR:
        n, off = _read_len(buf, off)
        if off + n > len(buf):
            raise SerializationError("truncated string")
        return buf[off:off + n].decode("utf-8"), off + n
    if tag == _T_BYTES:
        n, off = _read_len(buf, off)
        if off + n > len(buf):
            raise SerializationError("truncated bytes")
        return buf[off:off + n], off + n
    if tag in (_T_LIST, _T_TUPLE):
        n, off = _read_len(buf, off)
        items = []
        for _ in range(n):
            item, off = _decode_from(buf, off)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), off
    if tag == _T_DICT:
        n, off = _read_len(buf, off)
        result = {}
        for _ in range(n):
            k, off = _decode_from(buf, off)
            v, off = _decode_from(buf, off)
            result[k] = v
        return result, off
    if tag == _T_NDARRAY:
        n, off = _read_len(buf, off)
        dtype = np.dtype(buf[off:off + n].decode("ascii"))
        off += n
        ndim, off = _read_len(buf, off)
        shape = []
        for _ in range(ndim):
            dim, off = _read_len(buf, off)
            shape.append(dim)
        nbytes, off = _read_len(buf, off)
        if off + nbytes > len(buf):
            raise SerializationError("truncated ndarray payload")
        arr = np.frombuffer(buf[off:off + nbytes], dtype=dtype).reshape(shape)
        return arr.copy(), off + nbytes
    if tag == _T_OBJECT:
        n, off = _read_len(buf, off)
        key = buf[off:off + n].decode("utf-8")
        off += n
        fields, off = _decode_from(buf, off)
        if key not in _registry:
            raise SerializationError(f"unknown object type {key!r}")
        _cls, _to, from_fields = _registry[key]
        return from_fields(fields), off
    raise SerializationError(f"unknown type tag {tag!r} at offset {off - 1}")


# ---------------------------------------------------------------------------
# Sizing fast path
# ---------------------------------------------------------------------------
#
# ``encoded_size`` used to be ``len(encode(x))`` — a full encode (including
# an ``ndarray.tobytes()`` copy) performed purely for byte accounting, once
# per hop and once per fan-out target.  The size visitor below computes the
# identical byte count with zero allocation, and ``freeze_size`` memoizes
# the total for registered wire objects so a message broadcast to N
# subscribers (or re-sent on a retry) is walked exactly once.

#: memoized sizes of *frozen* registered objects, keyed by ``id``.  Entries
#: are removed by a ``weakref.finalize`` when the object is collected, so a
#: live entry can never alias a recycled id.
_FROZEN_SIZES: Dict[int, int] = {}

#: test/bench instrumentation: when set, called with each registered object
#: whose fields are fully walked for sizing (i.e. on every memo *miss*).
_object_walk_hook: Optional[Callable[[Any], None]] = None


def set_object_walk_hook(
        hook: Optional[Callable[[Any], None]]) -> Optional[Callable]:
    """Install (or clear) the sizing-walk hook; returns the previous one."""
    global _object_walk_hook
    previous, _object_walk_hook = _object_walk_hook, hook
    return previous


def _size_int(value: int) -> int:
    if -(2 ** 63) <= value < 2 ** 63:
        return 9
    return 5 + (value.bit_length() + 8) // 8 + 1


def _size_str(value: str) -> int:
    if value.isascii():  # UTF-8 length fast path
        return 5 + len(value)
    return 5 + len(value.encode("utf-8"))


def _size_seq(value) -> int:
    # Scalar cases are unrolled inline: sequence/dict elements are
    # overwhelmingly str/float/int, and the extra dispatch call per element
    # is the dominant cost of the walk.
    size_of = _size_of
    total = 5
    for v in value:
        tv = type(v)
        if tv is str:
            total += 5 + (len(v) if v.isascii() else len(v.encode("utf-8")))
        elif tv is float:
            total += 9
        elif tv is int:
            total += (9 if -(2 ** 63) <= v < 2 ** 63
                      else 5 + (v.bit_length() + 8) // 8 + 1)
        elif tv is bool or v is None:
            total += 1
        else:
            total += size_of(v)
    return total


def _size_dict(value: dict) -> int:
    size_of = _size_of
    total = 5
    for k, v in value.items():
        if type(k) is str:
            total += 5 + (len(k) if k.isascii() else len(k.encode("utf-8")))
        else:
            total += size_of(k)
        tv = type(v)
        if tv is str:
            total += 5 + (len(v) if v.isascii() else len(v.encode("utf-8")))
        elif tv is float:
            total += 9
        elif tv is int:
            total += (9 if -(2 ** 63) <= v < 2 ** 63
                      else 5 + (v.bit_length() + 8) // 8 + 1)
        elif tv is bool or v is None:
            total += 1
        else:
            total += size_of(v)
    return total


def _size_ndarray(value: np.ndarray) -> int:
    # dtype.str is always ASCII; payload is itemsize * size — no copy.
    return 1 + 4 + len(value.dtype.str) + 4 + 4 * value.ndim \
        + 4 + value.dtype.itemsize * value.size


#: exact-type dispatch for the common value model (hot path); subclasses and
#: numpy scalars fall back to the isinstance chain in ``_size_of``
_SIZERS: Dict[type, Callable[[Any], int]] = {
    type(None): lambda _v: 1,
    bool: lambda _v: 1,
    int: _size_int,
    float: lambda _v: 9,
    str: _size_str,
    bytes: lambda v: 5 + len(v),
    bytearray: lambda v: 5 + len(v),
    list: _size_seq,
    tuple: _size_seq,
    dict: _size_dict,
    np.ndarray: _size_ndarray,
}


def _size_of(value: Any) -> int:
    """Exact ``len(encode(value))`` without materializing any bytes."""
    tp = type(value)
    sizer = _SIZERS.get(tp)
    if sizer is not None:
        return sizer(value)
    info = _obj_size_info.get(tp)
    if info is not None:
        size = _FROZEN_SIZES.get(id(value))
        if size is not None:
            return size
        if _object_walk_hook is not None:
            _object_walk_hook(value)
        key_len, to_fields = info
        fields = vars(value) if to_fields is None else to_fields(value)
        return 5 + key_len + _size_dict(fields)
    # Slow path: subclasses and numpy scalars, mirroring _encode_into's
    # isinstance chain exactly.
    if value is True or value is False:
        return 1
    if isinstance(value, int):
        return _size_int(value)
    if isinstance(value, float):
        return 9
    if isinstance(value, str):
        return _size_str(value)
    if isinstance(value, (bytes, bytearray)):
        return 5 + len(value)
    if isinstance(value, (list, tuple)):
        return _size_seq(value)
    if isinstance(value, dict):
        return _size_dict(value)
    if isinstance(value, np.ndarray):
        return _size_ndarray(value)
    if isinstance(value, np.integer):
        return _size_int(int(value))
    if isinstance(value, np.floating):
        return 9
    raise SerializationError(
        f"cannot encode value of type {type(value).__name__}: {value!r}")


def encoded_size(value: Any) -> int:
    """Number of bytes :func:`encode` would produce for ``value``.

    Computed by a dedicated size visitor: no encoded bytes are materialized
    and ndarrays are sized without a ``tobytes()`` copy.  The invariant
    ``encoded_size(x) == len(encode(x))`` is pinned by property tests.
    """
    return _size_of(value)


def freeze_size(value: Any) -> int:
    """Size ``value`` and memoize the result if it is a registered object.

    Callers on the wire path (network send, ORB marshalling, collaboration
    fan-out) use this so a message delivered to N subscribers or forwarded
    across multiple hops is sized exactly once.  From the first call on the
    object must be treated as *frozen*: mutating a message after it has
    been sent or buffered for fan-out yields stale byte accounting.
    """
    if type(value) not in _by_class:
        return _size_of(value)
    key = id(value)
    size = _FROZEN_SIZES.get(key)
    if size is None:
        size = _size_of(value)
        try:
            # the finalizer drops the entry when the object dies, before
            # its id can be reused
            weakref.finalize(value, _FROZEN_SIZES.pop, key, None)
        except TypeError:  # not weak-referenceable: size it, don't memoize
            return size
        _FROZEN_SIZES[key] = size
    return size
