"""Health status taxonomy and the hysteresis state machine.

The paper's Daemon handler and server-to-server Control network exist so
operators can tell which servers and applications in the collaboratory
are alive; this module gives that judgement a first-class representation.
Each monitored component — a server, an application proxy, a peer — is a
:class:`ComponentHealth` fed a stream of success/failure observations
(heartbeats, liveness pings, relay outcomes) and reduced to one of four
statuses:

- ``healthy`` — recent observations succeed
- ``degraded`` — a previously healthy component missed an observation
  (transient WAN blip territory; nothing is routed away yet)
- ``unhealthy`` — :attr:`down_after` consecutive misses (routing avoids
  the component; callers fail over eagerly)
- ``unknown`` — never observed

Transitions are hysteretic so statuses do not flap: going *down* takes
``down_after`` consecutive failures and coming *back* from unhealthy
takes ``up_after`` consecutive successes.  A degraded component recovers
on a single success — it was never considered down.

Everything here is plain bookkeeping on the simulated clock: recording
an observation schedules no events, sends no messages, and charges no
CPU, which is what lets the health plane run enabled-by-default without
perturbing a single experiment table.

This module is internal to :mod:`repro.health` — callers use the
:class:`~repro.health.monitor.HealthMonitor` query API via the package
facade (the health-boundary lint in ``tools/check_pipeline_boundary.py``
enforces it).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

#: never observed
STATUS_UNKNOWN = "unknown"
#: recent observations succeed
STATUS_HEALTHY = "healthy"
#: a healthy component missed at least one observation (not yet down)
STATUS_DEGRADED = "degraded"
#: ``down_after`` consecutive misses — routing avoids the component
STATUS_UNHEALTHY = "unhealthy"

#: all statuses, in increasing order of badness
STATUS_ORDER = (STATUS_UNKNOWN, STATUS_HEALTHY, STATUS_DEGRADED,
                STATUS_UNHEALTHY)

#: numeric encoding for gauges (Prometheus export, registry snapshots)
STATUS_CODES = {STATUS_UNKNOWN: 0, STATUS_HEALTHY: 1,
                STATUS_DEGRADED: 2, STATUS_UNHEALTHY: 3}

#: default hysteresis: consecutive misses before a component goes down
DEFAULT_DOWN_AFTER = 3
#: default hysteresis: consecutive successes before it is trusted again
DEFAULT_UP_AFTER = 2


class ComponentHealth:
    """Hysteresis state machine for one monitored component."""

    __slots__ = ("component", "down_after", "up_after", "status",
                 "since", "last_seen", "_fail_streak", "_ok_streak",
                 "successes", "failures", "transitions")

    def __init__(self, component: str, *,
                 down_after: int = DEFAULT_DOWN_AFTER,
                 up_after: int = DEFAULT_UP_AFTER) -> None:
        if down_after < 1 or up_after < 1:
            raise ValueError("hysteresis thresholds must be >= 1")
        self.component = component
        self.down_after = down_after
        self.up_after = up_after
        self.status = STATUS_UNKNOWN
        #: sim time of the last status change (0.0 until first observed)
        self.since = 0.0
        #: sim time of the last successful observation
        self.last_seen: Optional[float] = None
        self._fail_streak = 0
        self._ok_streak = 0
        self.successes = 0
        self.failures = 0
        #: (time, old_status, new_status) history, oldest first
        self.transitions: List[Tuple[float, str, str]] = []

    def _become(self, status: str, now: float) -> None:
        if status == self.status:
            return
        self.transitions.append((now, self.status, status))
        self.status = status
        self.since = now

    def record_success(self, now: float) -> str:
        """One good observation (heartbeat arrived, call succeeded)."""
        self.successes += 1
        self.last_seen = now
        self._ok_streak += 1
        self._fail_streak = 0
        if self.status in (STATUS_UNKNOWN, STATUS_DEGRADED):
            # unknown: first contact; degraded: it was never down —
            # a single good observation restores full trust.
            self._become(STATUS_HEALTHY, now)
        elif self.status == STATUS_UNHEALTHY:
            if self._ok_streak >= self.up_after:
                self._become(STATUS_HEALTHY, now)
        return self.status

    def record_failure(self, now: float) -> str:
        """One missed/failed observation."""
        self.failures += 1
        self._fail_streak += 1
        self._ok_streak = 0
        if self._fail_streak >= self.down_after:
            self._become(STATUS_UNHEALTHY, now)
        elif self.status == STATUS_HEALTHY:
            self._become(STATUS_DEGRADED, now)
        return self.status

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ComponentHealth {self.component!r} {self.status} "
                f"ok={self._ok_streak} fail={self._fail_streak}>")


class HealthModel:
    """All components one server knows about, keyed by component name.

    Component keys follow a two-part convention shared fleet-wide (so
    gossiped views merge cleanly): ``server:<name>`` for DISCOVER
    servers (self and peers alike) and ``app:<app_id>`` for application
    proxies.
    """

    def __init__(self, *, clock: Callable[[], float],
                 down_after: int = DEFAULT_DOWN_AFTER,
                 up_after: int = DEFAULT_UP_AFTER) -> None:
        self._clock = clock
        self.down_after = down_after
        self.up_after = up_after
        self._components: Dict[str, ComponentHealth] = {}

    # -- observation -------------------------------------------------------
    def component(self, key: str) -> ComponentHealth:
        entry = self._components.get(key)
        if entry is None:
            entry = ComponentHealth(key, down_after=self.down_after,
                                    up_after=self.up_after)
            self._components[key] = entry
        return entry

    def record_success(self, key: str) -> str:
        return self.component(key).record_success(self._clock())

    def record_failure(self, key: str) -> str:
        return self.component(key).record_failure(self._clock())

    def forget(self, key: str) -> None:
        """Drop a component (e.g. a deregistered application)."""
        self._components.pop(key, None)

    # -- queries -----------------------------------------------------------
    def status_of(self, key: str) -> str:
        entry = self._components.get(key)
        return entry.status if entry is not None else STATUS_UNKNOWN

    def is_unhealthy(self, key: str) -> bool:
        return self.status_of(key) == STATUS_UNHEALTHY

    def components(self) -> List[str]:
        return sorted(self._components)

    def statuses(self) -> Dict[str, str]:
        return {key: entry.status
                for key, entry in sorted(self._components.items())}

    def status_counts(self) -> Dict[str, int]:
        """``{status: how many components}`` over every known status."""
        counts = {status: 0 for status in STATUS_ORDER}
        for entry in self._components.values():
            counts[entry.status] += 1
        return counts

    def transitions(self) -> List[Tuple[float, str, str, str]]:
        """Every ``(time, component, old, new)`` transition, time-ordered."""
        out = []
        for key, entry in self._components.items():
            for when, old, new in entry.transitions:
                out.append((when, key, old, new))
        out.sort()
        return out

    def detection_latency(self, key: str, since: float) -> Optional[float]:
        """Sim seconds from ``since`` until ``key`` first went unhealthy
        at or after ``since`` (None if it never did)."""
        entry = self._components.get(key)
        if entry is None:
            return None
        for when, _old, new in entry.transitions:
            if new == STATUS_UNHEALTHY and when >= since:
                return when - since
        return None

    def snapshot(self) -> dict:
        """Plain-dict reduction for the metrics registry / status surface."""
        return {
            "counts": self.status_counts(),
            "components": {
                key: {"status": entry.status, "since": entry.since,
                      "failures": entry.failures,
                      "successes": entry.successes}
                for key, entry in sorted(self._components.items())
            },
        }
