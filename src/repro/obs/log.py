"""Structured JSONL logging stamped with sim time and trace context.

A :class:`StructuredLog` replaces ad-hoc ``print`` calls and silent
drops with machine-readable records: every ``event()`` call produces one
dict auto-stamped with the simulated time, the owning server's id, and
— when a span is active on the tracer's activation stack — the current
trace/span ids, so a log line can be joined against the span store
without any manual correlation.

Records are held in a bounded ring (oldest dropped first) and can also
be streamed to a sink as JSON lines (``--log-output`` on the wallclock
bench).  Logging is pure bookkeeping: no events, no messages, no CPU —
safe to leave on inside golden scenarios.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

#: default record retention per log
DEFAULT_CAPACITY = 10_000

LEVELS = ("debug", "info", "warning", "error")


class StructuredLog:
    """Bounded, trace-correlated event log for one server (or tool)."""

    def __init__(self, *, clock: Optional[Callable[[], float]] = None,
                 server: str = "", tracer=None,
                 sink: Optional[Callable[[str], None]] = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self._clock = clock
        self.server = server
        self.tracer = tracer
        #: optional callable receiving each record as a JSON line
        self.sink = sink
        self._records: Deque[dict] = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}
        self.dropped = 0

    def event(self, event: str, level: str = "info", **fields: Any) -> dict:
        """Record one structured event; returns the record."""
        record: Dict[str, Any] = {
            "ts": self._clock() if self._clock is not None else 0.0,
            "server": self.server,
            "level": level if level in LEVELS else "info",
            "event": event,
        }
        span = (self.tracer.current_span()
                if self.tracer is not None else None)
        if span is not None:
            record["trace_id"] = span.trace_id
            record["span_id"] = span.span_id
        for key, value in fields.items():
            record[key] = value
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        self._records.append(record)
        self._counts[event] = self._counts.get(event, 0) + 1
        if self.sink is not None:
            self.sink(json.dumps(record, sort_keys=True, default=str))
        return record

    def warn(self, event: str, **fields: Any) -> dict:
        return self.event(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> dict:
        return self.event(event, level="error", **fields)

    # -- queries -----------------------------------------------------------
    def records(self, event: Optional[str] = None,
                level: Optional[str] = None) -> List[dict]:
        out = list(self._records)
        if event is not None:
            out = [r for r in out if r["event"] == event]
        if level is not None:
            out = [r for r in out if r["level"] == level]
        return out

    def counts(self) -> Dict[str, int]:
        """``{event: occurrences}`` over the log's lifetime."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._records)

    def export_jsonl(self) -> str:
        """Every retained record as JSON lines (CI artifacts)."""
        return "\n".join(json.dumps(r, sort_keys=True, default=str)
                         for r in self._records)

    def snapshot(self) -> dict:
        return {"records": len(self._records), "dropped": self.dropped,
                "events": dict(self._counts)}
