"""Client half of the sharded directory: routing, replication, failover.

The old ``UserDirectoryService`` callers held one ``directory_ref`` and
invoked it directly.  A :class:`DirectoryClient` instead:

- routes every key through the shared :class:`~repro.directory.ring.HashRing`
  to its R replica shards,
- **writes through** to all replicas (a write that reaches at least one
  replica succeeds; skipped replicas are counted and reported to the
  health plane),
- **reads with failover**: replicas marked ``unhealthy`` by the health
  monitor are routed around up-front, and a replica that times out
  mid-read is skipped with a ``note_failover`` — the read succeeds as
  long as any replica answers,
- keeps a **bounded stub cache** (LRU by shard) that is invalidated
  wholesale whenever the ring epoch changes, and per-entry when a
  shard's ref changes or an invocation fails,
- stamps every call with the ring epoch it routed under and transparently
  retries once when a servant rejects the call as ``StaleRingEpoch``.

Liveness accounting follows the federation convention: only
:class:`~repro.orb.errors.CommFailure` counts as a miss — any other
reply, including a remote exception, proves the replica is alive.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.directory.ring import HashRing
from repro.directory.shard import DIRECTORY_SHARD, STALE_EPOCH
from repro.orb.errors import CommFailure, OrbError, RemoteException
from repro.orb.idl import Stub, make_stub

#: default bound on cached shard stubs per client
DEFAULT_STUB_CACHE = 32


class DirectoryClient:
    """One server's typed gateway to the sharded directory plane."""

    def __init__(self, orb, ring: HashRing, refs: Mapping[str, Any], *,
                 server_name: str = "", replicas: int = 1,
                 health=None, metrics=None, log=None,
                 call_timeout: float = 30.0,
                 stub_cache_size: int = DEFAULT_STUB_CACHE,
                 refresh: Optional[Callable[[], HashRing]] = None) -> None:
        self.orb = orb
        self.ring = ring
        #: called on a stale-epoch rejection to fetch the live ring (the
        #: plane wires this up); None means the ring object is shared and
        #: already live
        self.refresh = refresh
        #: live ``shard name -> ObjectRef`` view, owned by the plane
        self.refs = refs
        self.server_name = server_name
        self.replicas = max(1, replicas)
        #: duck-typed health hooks (``HealthMonitor`` satisfies this):
        #: is_unhealthy_peer / note_peer_success / note_peer_failure /
        #: note_failover — optional, all guarded.
        self.health = health
        self.metrics = metrics
        self.log = log
        self.call_timeout = call_timeout
        self.stub_cache_size = max(1, stub_cache_size)
        self._stubs: "OrderedDict[str, Stub]" = OrderedDict()
        self._seen_epoch = ring.epoch

    # -- bookkeeping -------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, n)

    def _epoch_guard(self) -> None:
        """Drop every cached stub when the ring membership changed."""
        if self.ring.epoch != self._seen_epoch:
            if self._stubs:
                self._count("epoch_invalidations", len(self._stubs))
                self._stubs.clear()
            self._seen_epoch = self.ring.epoch

    def _stub(self, shard: str) -> Optional[Stub]:
        ref = self.refs.get(shard)
        if ref is None:
            return None
        stub = self._stubs.get(shard)
        if stub is not None and stub.ref is ref:
            self._count("stub_cache_hits")
            self._stubs.move_to_end(shard)
            return stub
        self._count("stub_cache_misses")
        stub = make_stub(self.orb, ref, DIRECTORY_SHARD,
                         timeout=self.call_timeout)
        self._stubs[shard] = stub
        self._stubs.move_to_end(shard)
        while len(self._stubs) > self.stub_cache_size:
            self._stubs.popitem(last=False)
            self._count("stub_evictions")
        return stub

    def _invalidate(self, shard: str) -> None:
        self._stubs.pop(shard, None)

    def _note_outcome(self, shard: str, exc: Optional[OrbError]) -> None:
        """Fold one call's outcome into the health plane (CommFailure-only
        misses — a remote exception is an answer, i.e. proof of life)."""
        if self.health is None:
            return
        if exc is None or not isinstance(exc, CommFailure):
            self.health.note_peer_success(shard)
        else:
            self.health.note_peer_failure(shard)

    def _unhealthy(self, shard: str) -> bool:
        return (self.health is not None
                and self.health.is_unhealthy_peer(shard))

    # -- low-level call with stale-epoch retry -----------------------------
    def _call(self, shard: str, op: str, *args):
        """Invoke ``op`` on ``shard``, stamping the ring epoch; retries
        once after refreshing when the servant reports a stale epoch."""
        for attempt in (0, 1):
            self._epoch_guard()
            stub = self._stub(shard)
            if stub is None:
                raise CommFailure(f"no ref for directory shard {shard!r}")
            try:
                result = yield from getattr(stub, op)(*args, self.ring.epoch)
            except RemoteException as exc:
                if exc.exc_type == STALE_EPOCH and attempt == 0:
                    # servant moved ahead of the epoch we stamped — refresh
                    # the ring view, drop caches, re-route
                    self._count("stale_epoch_retries")
                    if self.refresh is not None:
                        self.ring = self.refresh()
                    self._stubs.clear()
                    self._seen_epoch = self.ring.epoch
                    continue
                raise
            return result
        raise OrbError(f"shard {shard!r} kept rejecting epoch "
                       f"{self.ring.epoch}")  # pragma: no cover - defensive

    # -- replicated write / read -------------------------------------------
    def _write(self, key: str, op: str, *args) -> Any:
        """Write-through to every replica of ``key``.

        Succeeds (returning the first replica's result) when at least one
        replica accepted the write; unreachable replicas are skipped and
        counted — anti-entropy is the health plane's job, not the caller's.
        """
        self._epoch_guard()
        result: Any = None
        wrote = False
        last_exc: Optional[OrbError] = None
        for shard in self.ring.replicas_of(key, self.replicas):
            try:
                value = yield from self._call(shard, op, *args)
            except OrbError as exc:
                self._note_outcome(shard, exc)
                self._invalidate(shard)
                self._count("write_skips")
                last_exc = exc
                if self.log is not None:
                    self.log.warn("dir_write_skipped", shard=shard,
                                  op=op, error=type(exc).__name__)
                continue
            self._note_outcome(shard, None)
            if not wrote:
                result = value
                wrote = True
        if not wrote:
            raise last_exc if last_exc is not None else CommFailure(
                f"no replicas reachable for {op} key={key!r}")
        return result

    def _read(self, key: str, op: str, *args) -> Any:
        """Read from the first live replica of ``key``.

        Replicas the health plane marks unhealthy are skipped up-front;
        a replica that fails mid-read is skipped with a failover note.
        Raises the last error when every replica fails.
        """
        self._epoch_guard()
        order = self.ring.replicas_of(key, self.replicas)
        # route around known-unhealthy replicas, but keep them as a last
        # resort so a fully-marked replica set still gets one attempt
        preferred = [s for s in order if not self._unhealthy(s)]
        skipped = [s for s in order if self._unhealthy(s)]
        last_exc: Optional[OrbError] = None
        for position, shard in enumerate(preferred + skipped):
            if position > 0:
                self._count("read_failovers")
                if self.health is not None:
                    self.health.note_failover()
            started = self.orb.sim.now
            try:
                value = yield from self._call(shard, op, *args)
            except OrbError as exc:
                self._note_outcome(shard, exc)
                self._invalidate(shard)
                last_exc = exc
                continue
            self._note_outcome(shard, None)
            if self.metrics is not None:
                self.metrics.observe_read(self.orb.sim.now - started)
            return value
        if self.log is not None:
            self.log.error("dir_read_failed", key=key, op=op,
                           replicas=len(order))
        raise last_exc if last_exc is not None else CommFailure(
            f"no replicas reachable for {op} key={key!r}")

    # -- directory API (generator methods, mirror the old servant) ---------
    def authenticate(self, user: str) -> bool:
        """Network-wide level-one authentication in one sharded lookup."""
        self._count("authenticates")
        return (yield from self._read(user, "authenticate", user))

    def lookup(self, user: str) -> List[dict]:
        """Every application the user may access, network-wide."""
        self._count("lookups")
        return (yield from self._read(user, "lookup", user))

    def locate_app(self, app_id: str) -> Optional[str]:
        """Home server of ``app_id`` per the directory (or None)."""
        self._count("locates")
        return (yield from self._read(app_id, "locate_app", app_id))

    def publish_app(self, app_id: str, server: str, name: str,
                    acl: Dict[str, str]) -> bool:
        """Publish one application's ACL and location.

        The app record and each user's entry hash to (generally)
        different shards; users dropped from a previous ACL are cleaned
        up using the prior user list the app shard returns.
        """
        self._count("publishes")
        prior = yield from self._write(
            app_id, "put_app", app_id, server, name, sorted(acl))
        for user in prior or ():
            if user not in acl:
                yield from self._write(user, "drop_user_entry", user, app_id)
        for user, privilege in acl.items():
            summary = {"app_id": app_id, "name": name, "server": server,
                       "privilege": privilege, "active": True,
                       "phase": "unknown"}
            yield from self._write(
                user, "put_user_entry", user, app_id, summary)
        return True

    def withdraw_app(self, app_id: str) -> bool:
        """Remove an application and every user entry pointing at it."""
        self._count("withdrawals")
        users = yield from self._write(app_id, "drop_app", app_id)
        for user in users or ():
            yield from self._write(user, "drop_user_entry", user, app_id)
        return True

    def withdraw_server(self, server: str) -> int:
        """Bulk-withdraw everything ``server`` published: one
        ``drop_server`` per shard (each shard cleans its own slice via
        its reverse indexes); returns app records dropped ring-wide."""
        self._count("server_withdrawals")
        self._epoch_guard()
        dropped: set = set()
        for shard in list(self.ring.nodes):
            try:
                app_ids = yield from self._call(shard, "drop_server", server)
            except OrbError as exc:
                self._note_outcome(shard, exc)
                self._invalidate(shard)
                self._count("write_skips")
                continue
            self._note_outcome(shard, None)
            dropped.update(app_ids)
        return len(dropped)
