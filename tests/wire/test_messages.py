"""Tests for the typed message hierarchy and its wire round-trips."""

import pytest

from repro.wire import (
    AckMessage,
    ChatMessage,
    CommandMessage,
    ControlMessage,
    ErrorMessage,
    LockMessage,
    Message,
    RegisterMessage,
    ResponseMessage,
    UpdateMessage,
    WhiteboardMessage,
    decode,
    encode,
    message_type_name,
)


def test_msg_ids_unique_and_increasing():
    a = UpdateMessage(payload=1)
    b = UpdateMessage(payload=2)
    assert b.msg_id > a.msg_id


def test_type_name_dispatch():
    assert message_type_name(UpdateMessage(payload=0)) == "UpdateMessage"
    assert message_type_name(ErrorMessage(1, "x")) == "ErrorMessage"
    assert message_type_name(ResponseMessage(1)) == "ResponseMessage"


def test_message_type_name_rejects_non_message():
    with pytest.raises(TypeError):
        message_type_name({"not": "a message"})


def test_default_channels_match_paper():
    # §4.1/§5.1: Main for registration+updates, Command for requests,
    # Response for replies, Control for server-to-server events.
    assert RegisterMessage("app", "tok", {}, {}).channel == "main"
    assert UpdateMessage().channel == "main"
    assert CommandMessage("get").channel == "command"
    assert ResponseMessage(1).channel == "response"
    assert ErrorMessage(1, "e").channel == "response"
    assert ControlMessage("event").channel == "control"


def test_command_request_id_defaults_to_msg_id():
    cmd = CommandMessage("pause")
    assert cmd.request_id == cmd.msg_id
    explicit = CommandMessage("pause", request_id=99)
    assert explicit.request_id == 99


@pytest.mark.parametrize("msg", [
    RegisterMessage("wave1", "secret", {"params": ["dt"]}, {"alice": "steer"}),
    UpdateMessage(payload={"step": 10}, seq=3, timestamp=1.25),
    CommandMessage("set_param", {"name": "dt", "value": 0.01}),
    ResponseMessage(7, result={"ok": True}),
    ErrorMessage(9, "denied", code="AUTH"),
    ControlMessage("server_down", detail="d2-server"),
    AckMessage(4, ok=False, info="rejected"),
    LockMessage("acquire", holder="alice"),
    ChatMessage("bob", "hello group"),
    WhiteboardMessage("carol", "line", [(0, 0), (1, 1)]),
])
def test_messages_roundtrip_on_wire(msg):
    out = decode(encode(msg))
    assert type(out) is type(msg)
    assert vars(out) == vars(msg)


def test_message_equality_and_hash():
    m = ChatMessage("a", "hi")
    clone = decode(encode(m))
    assert clone == m
    assert hash(clone) == hash(m)
    assert ChatMessage("a", "hi") != m  # different msg_id


def test_envelope_fields():
    m = CommandMessage("go", sender="client-1", destination="d0-server",
                       app_id="app-3", client_id="c-1")
    assert m.sender == "client-1"
    assert m.destination == "d0-server"
    assert m.app_id == "app-3"
    assert m.client_id == "c-1"


def test_update_payload_sizes_differ_on_wire():
    small = UpdateMessage(payload=list(range(4)))
    large = UpdateMessage(payload=list(range(4000)))
    assert len(encode(large)) > len(encode(small))
