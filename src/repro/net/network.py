"""The network: topology, routing, and frame delivery.

``Network.send`` computes the (latency-weighted) shortest path once, then
walks it with a :class:`_Delivery` state machine: each hop occupies the
link transmitter for ``size/bandwidth`` (one pooled kernel callback), then
waits the propagation latency (one more), and is counted by the traffic
trace.  Frames finally land in the destination endpoint's inbox.  Compared
to the generator-process-per-frame design this replaces, a single-hop
delivery schedules two pooled events instead of spawning a process (boot
event, resource grant, two timeouts, process-completion event) — and no
per-frame process name is ever built.

Loopback delivery is fused further: same-host frames are appended to a
per-instant batch and handed off by one two-stage sweep, so a fan-out of N
local sends schedules one callback chain, not N delivery processes.

Payloads cross the simulated wire **by reference** — ``encode()`` is never
called on the send path; byte accounting comes from the allocation-free
size visitor (``freeze_size``), and ndarray payloads are therefore
zero-copy end to end.  ``strict_wire=True`` opts back into round-tripping
every payload through ``encode``/``decode`` at hand-off, for codec-parity
tests.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

import networkx as nx

from repro.net.host import Host
from repro.net.link import Link
from repro.net.trace import TrafficTrace
from repro.wire import decode, encode, freeze_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator

_frame_ids = itertools.count(1)

#: how many recently dropped frames are kept around for debugging
DROPPED_HISTORY = 64


class NetworkError(Exception):
    """Unroutable destinations, unbound ports, unknown hosts."""


@dataclass(slots=True)
class Frame:
    """One payload in flight, with its measured wire size."""

    src_host: str
    src_port: int
    dst_host: str
    dst_port: int
    payload: Any
    size: int
    channel: str = "main"
    sent_at: float = 0.0
    delivered_at: Optional[float] = None
    #: propagated trace context (repro.obs.TraceContext), carried as frame
    #: metadata only — never encoded, so wire sizes are trace-invariant
    trace_ctx: Any = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def latency(self) -> Optional[float]:
        """End-to-end delivery time, once delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at


class _Delivery:
    """Per-frame hop walker: the fused replacement for the old
    generator-process delivery.

    Each hop is two pooled callbacks at most (transmission complete,
    propagation latency); zero-cost segments collapse into synchronous
    calls.  The instance is the only per-frame allocation.
    """

    __slots__ = ("net", "frame", "path", "idx", "wan", "link")

    def __init__(self, net: "Network", frame: Frame, path: List[str]) -> None:
        self.net = net
        self.frame = frame
        self.path = path
        self.idx = 0
        self.wan = False
        self.link: Optional[Link] = None
        self._start_hop()

    def _start_hop(self) -> None:
        path, idx = self.path, self.idx
        link = self.net.link_between(path[idx], path[idx + 1])
        self.link = link
        link.start_tx(path[idx], self.frame.size, _Delivery._tx_done, self)

    def _tx_done(self) -> None:
        latency = self.link.latency
        if latency > 0.0:
            self.net.sim.schedule_fn(latency, _Delivery._arrive, self)
        else:
            self._arrive()

    def _arrive(self) -> None:
        net, frame, link = self.net, self.frame, self.link
        net.trace.record(link, frame)
        if net.cost_ledger is not None:
            net.cost_ledger.account_frame_hop(frame, link.kind == "wan")
        if link.kind == "wan":
            self.wan = True
        self.idx += 1
        if self.idx + 1 < len(self.path):
            self._start_hop()
            return
        if net.tracer is not None and frame.trace_ctx is not None:
            # Post-hoc bookkeeping: the transit already happened, the span
            # just records it (zero-event — no scheduling, no wire bytes).
            net.tracer.record_span(
                "net.hop", frame.sent_at, net.sim.now, plane="net",
                server=f"{frame.src_host}->{frame.dst_host}",
                parent=frame.trace_ctx,
                attrs={"wan": self.wan, "channel": frame.channel,
                       "bytes": frame.size})
        net._hand_off(frame)


class Network:
    """A set of hosts joined by links, with static shortest-path routing."""

    def __init__(self, sim: "Simulator", trace: Optional[TrafficTrace] = None,
                 frame_overhead: int = 64, strict_wire: bool = False) -> None:
        self.sim = sim
        self.trace = trace if trace is not None else TrafficTrace()
        #: optional repro.obs.Tracer — stamps outgoing frames with the
        #: sender's current trace context and records per-hop spans
        self.tracer = None
        #: optional repro.obs.RequestCostLedger — per-hop wire bytes
        #: (LAN/WAN) and dropped frames attributed back to the request
        #: that sent them (via Frame.trace_ctx) or to the source host
        self.cost_ledger = None
        #: per-frame framing overhead in bytes (headers: TCP/IP + protocol)
        self.frame_overhead = frame_overhead
        #: round-trip every payload through encode/decode at hand-off.
        #: Off by default: payloads travel by reference (zero-copy) with
        #: their frozen size; strict mode exists for codec-parity tests.
        self.strict_wire = strict_wire
        self.hosts: Dict[str, Host] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self.graph = nx.Graph()
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}
        #: loopback frames awaiting this instant's hand-off sweep
        self._loopback_batch: List[Frame] = []
        self._loopback_scheduled = False
        #: the most recent frames that arrived at unbound ports (bounded —
        #: undeliverable traffic must not grow memory without limit)
        self.dropped: Deque[Frame] = deque(maxlen=DROPPED_HISTORY)
        #: total frames ever dropped (also mirrored into the traffic trace)
        self.dropped_count = 0

    # -- construction ------------------------------------------------------
    def add_host(self, name: str, cpu_capacity: int = 1,
                 domain: str = "default") -> Host:
        """Create and attach a host."""
        if name in self.hosts:
            raise NetworkError(f"duplicate host {name!r}")
        host = Host(self.sim, name, cpu_capacity=cpu_capacity, domain=domain)
        host.network = self
        self.hosts[name] = host
        self.graph.add_node(name)
        return host

    def add_link(self, a: str, b: str, latency: float,
                 bandwidth: float = float("inf"), kind: str = "lan") -> Link:
        """Join two existing hosts with a duplex link."""
        for end in (a, b):
            if end not in self.hosts:
                raise NetworkError(f"unknown host {end!r}")
        key = tuple(sorted((a, b)))
        if key in self.links:
            raise NetworkError(f"duplicate link {a}<->{b}")
        link = Link(self.sim, a, b, latency, bandwidth, kind)
        self.links[key] = link
        self.graph.add_edge(a, b, weight=max(latency, 1e-9), link=link)
        self._route_cache.clear()
        return link

    def link_between(self, a: str, b: str) -> Link:
        """The direct link joining ``a`` and ``b``."""
        try:
            return self.links[(a, b) if a < b else (b, a)]
        except KeyError:
            raise NetworkError(f"no link {a}<->{b}") from None

    # -- routing ------------------------------------------------------------
    def route(self, src: str, dst: str) -> List[str]:
        """Hop sequence (list of host names) from ``src`` to ``dst``."""
        key = (src, dst)
        path = self._route_cache.get(key)
        if path is None:
            try:
                path = nx.shortest_path(self.graph, src, dst, weight="weight")
            except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
                raise NetworkError(f"no route {src} -> {dst}") from exc
            self._route_cache[key] = path
        return path

    def path_latency(self, src: str, dst: str) -> float:
        """Sum of propagation latencies along the route (no queueing)."""
        path = self.route(src, dst)
        return sum(self.link_between(a, b).latency
                   for a, b in zip(path, path[1:]))

    # -- delivery -------------------------------------------------------------
    def send(self, src_host: str, src_port: int, dst_host: str, dst_port: int,
             payload: Any, channel: str = "main",
             trace_ctx: Any = None) -> Frame:
        """Inject a frame; returns it immediately (delivery is asynchronous)."""
        if dst_host not in self.hosts:
            raise NetworkError(f"unknown destination host {dst_host!r}")
        # freeze_size memoizes the payload's wire size: a message re-sent
        # (retries, fan-out to several destinations) is sized exactly once
        size = freeze_size(payload) + self.frame_overhead
        if trace_ctx is None and self.tracer is not None:
            trace_ctx = self.tracer.current_context()
        frame = Frame(src_host, src_port, dst_host, dst_port, payload, size,
                      channel=channel, sent_at=self.sim.now,
                      trace_ctx=trace_ctx)
        if src_host == dst_host:
            # Loopback: no links, no transmission — joined to this
            # instant's batched same-tick hand-off sweep.
            self._loopback_batch.append(frame)
            if not self._loopback_scheduled:
                self._loopback_scheduled = True
                self.sim.schedule_fn(0.0, Network._loopback_boot, self,
                                     priority=0)
        else:
            _Delivery(self, frame, self.route(src_host, dst_host))
        return frame

    def _loopback_boot(self) -> None:
        # Two-stage chain mirroring the old per-frame boot (urgent) +
        # zero-timeout (normal) ordering, once per instant for the batch.
        self.sim.schedule_fn(0.0, Network._loopback_sweep, self)

    def _loopback_sweep(self) -> None:
        batch, self._loopback_batch = self._loopback_batch, []
        self._loopback_scheduled = False
        hand_off = self._hand_off
        for frame in batch:
            hand_off(frame)

    def _hand_off(self, frame: Frame) -> None:
        host = self.hosts[frame.dst_host]
        inbox = host.ports.get(frame.dst_port)
        frame.delivered_at = self.sim.now
        if inbox is None:
            # Port not bound: the frame is dropped, like a TCP RST. Higher
            # layers see it as a timeout. A bounded window stays visible
            # for diagnosability; the counters record the full total.
            self.dropped.append(frame)
            self.dropped_count += 1
            self.trace.record_dropped(frame)
            if self.cost_ledger is not None:
                self.cost_ledger.account_dropped(frame)
            return
        if self.strict_wire:
            # Parity mode: materialize the bytes the reference codec would
            # put on the wire and hand the decoded copy to the receiver.
            frame.payload = decode(encode(frame.payload))
        inbox.put(frame)
