"""Unit tests for parameters, sensors, actuators, and the control network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.steering import (
    Actuator,
    ControlNetwork,
    Sensor,
    SteerableParameter,
    SteeringError,
)


# ------------------------------ parameters -------------------------------

def test_parameter_set_and_read():
    p = SteerableParameter("dt", 0.1)
    assert p.value == 0.1
    assert p.set(0.2) == 0.2
    assert p.value == 0.2


def test_parameter_bounds_enforced():
    p = SteerableParameter("dt", 0.1, minimum=0.0, maximum=1.0)
    with pytest.raises(SteeringError):
        p.set(-0.1)
    with pytest.raises(SteeringError):
        p.set(1.5)
    assert p.value == 0.1  # unchanged after rejected writes


def test_parameter_read_only():
    p = SteerableParameter("n", 64, read_only=True)
    with pytest.raises(SteeringError):
        p.set(128)


def test_parameter_type_checked():
    p = SteerableParameter("name", "run-1")
    with pytest.raises(SteeringError):
        p.set(42)
    p.set("run-2")


def test_parameter_int_widens_to_float():
    p = SteerableParameter("x", 1.5)
    p.set(2)
    assert p.value == 2.0
    assert isinstance(p.value, float)


def test_parameter_bool_not_treated_as_number():
    p = SteerableParameter("flag", True)
    p.set(False)
    assert p.value is False


def test_parameter_on_change_callback():
    seen = []
    p = SteerableParameter("dt", 0.1, on_change=seen.append)
    p.set(0.5)
    assert seen == [0.5]


def test_parameter_descriptor():
    p = SteerableParameter("dt", 0.1, units="s", minimum=0.0, maximum=1.0,
                           description="timestep")
    d = p.descriptor()
    assert d == {"name": "dt", "value": 0.1, "type": "float", "units": "s",
                 "min": 0.0, "max": 1.0, "read_only": False,
                 "description": "timestep"}


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
       st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
def test_parameter_bounds_property(lo, hi):
    """Any accepted write lies within [min, max]; any out-of-range write
    raises and leaves the value unchanged."""
    lo, hi = min(lo, hi), max(lo, hi)
    start = (lo + hi) / 2
    p = SteerableParameter("x", start, minimum=lo, maximum=hi)
    for candidate in (lo, hi, (lo + hi) / 2, lo - 1.0, hi + 1.0):
        before = p.value
        try:
            p.set(candidate)
            assert lo <= p.value <= hi
        except SteeringError:
            assert candidate < lo or candidate > hi
            assert p.value == before


# ------------------------------- sensors ------------------------------------

def test_sensor_reads_live_value():
    state = {"v": 1}
    s = Sensor("v", lambda: state["v"])
    assert s.read() == 1
    state["v"] = 7
    assert s.read() == 7


def test_sensor_requires_callable():
    with pytest.raises(TypeError):
        Sensor("bad", 42)


def test_sensor_descriptor():
    s = Sensor("t", lambda: 0, units="K", monitored=True,
               description="temp")
    assert s.descriptor() == {"name": "t", "units": "K", "monitored": True,
                              "description": "temp"}


# ------------------------------- actuators -----------------------------------

def test_actuator_invocation_with_kwargs():
    calls = []
    a = Actuator("fire", lambda position=0: calls.append(position) or "ok")
    assert a.actuate(position=5) == "ok"
    assert calls == [5]


def test_actuator_requires_callable():
    with pytest.raises(TypeError):
        Actuator("bad", None)


# ----------------------------- control network --------------------------------

def make_network():
    net = ControlNetwork()
    net.add_parameter(SteerableParameter("dt", 0.1))
    net.add_sensor(Sensor("energy", lambda: 42.0, monitored=True))
    net.add_sensor(Sensor("debug", lambda: "hidden"))
    net.add_actuator(Actuator("kick", lambda: "kicked"))
    return net


def test_network_lookup():
    net = make_network()
    assert net.parameter("dt").value == 0.1
    assert net.sensor("energy").read() == 42.0
    assert net.actuator("kick").actuate() == "kicked"


def test_network_unknown_names():
    net = make_network()
    with pytest.raises(SteeringError):
        net.parameter("ghost")
    with pytest.raises(SteeringError):
        net.sensor("ghost")
    with pytest.raises(SteeringError):
        net.actuator("ghost")


def test_network_duplicate_names_rejected():
    net = make_network()
    with pytest.raises(SteeringError):
        net.add_parameter(SteerableParameter("dt", 0.5))
    with pytest.raises(SteeringError):
        net.add_sensor(Sensor("energy", lambda: 0))
    with pytest.raises(SteeringError):
        net.add_actuator(Actuator("kick", lambda: None))


def test_monitored_views_only_include_monitored():
    net = make_network()
    assert net.monitored_views() == {"energy": 42.0}


def test_interface_descriptor_is_wire_safe():
    from repro.wire import decode, encode
    net = make_network()
    desc = net.interface_descriptor()
    assert decode(encode(desc)) == desc
    assert [p["name"] for p in desc["parameters"]] == ["dt"]
    assert {s["name"] for s in desc["sensors"]} == {"energy", "debug"}
    assert [a["name"] for a in desc["actuators"]] == ["kick"]
