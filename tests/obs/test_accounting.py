"""The cost-attribution plane: exact per-request accounting, the
space-saving heavy-hitter sketch, and the dispatch profiler.

The load-bearing invariant (mirrored from the PR 9 time-series merge
tests) is **exact partition**: every charge lands in exactly one rollup
entry, all fields are integers, so any grouping of the entries sums back
to the ledger's running totals bit-for-bit, in any merge order.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import Reservoir
from repro.net import Network
from repro.obs import DispatchProfiler, RequestCostLedger
from repro.obs.accounting import ALL_DIMENSIONS, SpaceSaving
from repro.obs.timeseries import LogHistogram
from repro.pipeline.core import PLANE_HTTP, RequestContext
from repro.sim import Simulator


def make_ledger(**kwargs):
    """A ledger with inert clocks — pure bookkeeping, no simulator."""
    return RequestCostLedger(clock=lambda: 0.0, scope=lambda: "proc",
                             events_fn=lambda: 0, wall_clock=lambda: 0,
                             **kwargs)


class TestSpaceSaving:
    def test_exact_within_capacity(self):
        sk = SpaceSaving(capacity=4)
        for item, n in (("a", 5), ("b", 3), ("c", 1)):
            sk.add(item, n)
        assert sk.top() == [("a", 5, 0), ("b", 3, 0), ("c", 1, 0)]
        assert sk.guaranteed_top() == "a"

    def test_eviction_inherits_floor_as_error(self):
        sk = SpaceSaving(capacity=2)
        sk.add("a", 10)
        sk.add("b", 3)
        sk.add("c", 1)  # evicts b (the minimum), inherits its count
        (top_item, top_count, _), (item, count, error) = sk.top()
        assert (top_item, top_count) == ("a", 10)
        assert (item, count, error) == ("c", 4, 3)
        # the bound holds: count - error <= true count <= count
        assert count - error <= 1 <= count

    def test_ties_rank_lexicographically(self):
        sk = SpaceSaving(capacity=4)
        sk.add("z", 2)
        sk.add("a", 2)
        assert [item for item, _c, _e in sk.top()] == ["a", "z"]

    def test_guaranteed_top_refuses_ambiguity(self):
        sk = SpaceSaving(capacity=2)
        sk.add("a", 5)
        sk.add("b", 4)
        sk.add("c", 2)  # c's count 6 with error 4 — could be below a
        assert sk.guaranteed_top() is None

    def test_heavy_hitter_survives_churn(self):
        # 1 flooder + 200 one-shot principals through a capacity-8 sketch
        sk = SpaceSaving(capacity=8)
        for i in range(200):
            sk.add(f"bg{i}", 1)
            if i % 2 == 0:
                sk.add("flood", 3)
        top_item, count, error = sk.top(1)[0]
        assert top_item == "flood"
        assert count >= 300  # upper bound never undercounts
        assert sk.guaranteed_top() == "flood"

    def test_merge_adds_counts_and_errors(self):
        a, b = SpaceSaving(capacity=4), SpaceSaving(capacity=4)
        a.add("x", 5)
        b.add("x", 7)
        b.add("y", 2)
        a.merge_from(b)
        assert a.top() == [("x", 12, 0), ("y", 2, 0)]


class TestLedgerAttribution:
    def test_scoped_charges_attribute_to_principal(self):
        ledger = make_ledger()
        with ledger.scoped("alice", plane="federation",
                           operation="poll_round"):
            ledger.charge("wal_appends", 3)
        entry = ledger.entries[("alice", "-", "federation", "poll_round")]
        assert entry.as_dict()["wal_appends"] == 3
        assert ledger.total.as_dict()["wal_appends"] == 3

    def test_scopeless_charge_falls_back(self):
        ledger = make_ledger()
        ledger.charge("spans", 2, plane="obs", operation="span")
        assert ledger.entries[("-", "-", "obs", "span")].as_dict()[
            "spans"] == 2

    def test_request_lifecycle_charges_request_and_events(self):
        events = {"n": 0}
        ledger = RequestCostLedger(clock=lambda: 0.0, scope=lambda: "p",
                                   events_fn=lambda: events["n"],
                                   wall_clock=lambda: 0)
        ctx = RequestContext(PLANE_HTTP, principal="bob",
                             operation="poll")
        ledger.open_request(ctx)
        events["n"] += 4  # four events dispatched while handling
        ctx.attrs["cpu_cost"] = 0.0015
        ledger.close_request(ctx)
        vec = ledger.entries[("bob", "-", PLANE_HTTP, "poll")].as_dict()
        assert vec["requests"] == 1
        # +1 for the event that delivered the request itself
        assert vec["events"] == 5
        assert vec["cpu_us"] == 1500
        assert vec["errors"] == 0

    def test_error_close_counts_error(self):
        ledger = make_ledger()
        ctx = RequestContext(PLANE_HTTP, principal="eve", operation="put")
        ledger.open_request(ctx)
        ledger.close_request(ctx, error=True)
        vec = ledger.entries[("eve", "-", PLANE_HTTP, "put")].as_dict()
        assert vec["errors"] == 1 and vec["requests"] == 1

    def test_trace_binding_routes_frame_bytes(self):
        class Ctx:
            trace_id = 7

        class Frame:
            trace_ctx = Ctx()
            src_host = "h1"
            channel = "main"
            size = 120

        ledger = make_ledger()
        ledger.bind_trace(7, ("carol", "a#1", "orb", "lookup"))
        ledger.account_frame_hop(Frame(), wan=True)
        vec = ledger.entries[("carol", "a#1", "orb", "lookup")].as_dict()
        assert vec["wan_bytes"] == 120

    def test_unbound_frame_falls_back_to_src_host(self):
        class Frame:
            trace_ctx = None
            src_host = "h9"
            channel = "flood"
            size = 64

        ledger = make_ledger()
        ledger.account_frame_hop(Frame(), wan=False)
        assert ledger.entries[("h9", "-", "net", "flood")].as_dict()[
            "lan_bytes"] == 64

    def test_trace_binding_lru_is_bounded(self):
        ledger = make_ledger(max_trace_bindings=10)
        for i in range(25):
            ledger.bind_trace(i, ("p", "-", "orb", "op"))
        assert len(ledger._bindings) == 10
        assert 24 in ledger._bindings and 0 not in ledger._bindings

    def test_timeseries_records_cost_by_plane(self):
        ledger = make_ledger()
        with ledger.scoped("s1", plane="orb", operation="lookup"):
            ledger.charge("wal_appends", 2)
        assert ledger.timeseries.query("cost.wal_appends.orb", "sum") == 2


class TestDroppedFrameAccounting:
    """Satellite 1: shed load is cost, not just a diagnostics deque."""

    def test_unbound_port_drop_lands_in_ledger(self):
        sim = Simulator()
        net = Network(sim)
        ledger = RequestCostLedger(sim)
        net.cost_ledger = ledger
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b", latency=0.001)
        net.send("a", 1, "b", 9, {"junk": "x"})  # port 9 never bound
        sim.run()
        assert net.dropped_count == 1
        totals = ledger.total.as_dict()
        assert totals["dropped_frames"] == 1
        assert totals["dropped_bytes"] > 0
        vec = ledger.entries[("a", "-", "net", "main")].as_dict()
        assert vec["dropped_frames"] == 1
        assert vec["dropped_bytes"] == totals["dropped_bytes"]

    def test_dropped_costs_surface_in_pipeline_counters(self):
        from repro.bench.scenarios import pipeline_counters
        from repro.core.deployment import build_collaboratory

        collab = build_collaboratory(1)
        collab.run_bootstrap()
        server = collab.server_of(0)
        # spray two junk frames at an unbound port on the server host
        for _ in range(2):
            collab.net.send(server.host.name, 45_000, server.host.name,
                            9, {"junk": True})
        collab.sim.run(until=collab.sim.now + 1.0)
        row = pipeline_counters(collab.servers.values())
        assert row["cost_dropped_frames"] == 2
        assert row["cost_dropped_bytes"] > 0


class TestPartitionInvariants:
    """Satellite 3: per-principal vectors partition the global totals."""

    def test_partition_by_principal_sums_to_totals(self):
        ledger = make_ledger()
        for i, who in enumerate(("a", "b", "a", "c")):
            with ledger.scoped(who, plane="orb", operation=f"op{i % 2}"):
                ledger.charge("wal_appends", i + 1)
                ledger.charge("spans", 1)
        parts = ledger.partition_by("principal")
        summed = {dim: 0 for dim in ALL_DIMENSIONS}
        for vec in parts.values():
            for dim, val in vec.as_dict().items():
                summed[dim] += val
        assert summed == ledger.total.as_dict()

    @given(st.lists(
        st.tuples(st.sampled_from(["a", "b", "c", "d", "e"]),
                  st.sampled_from(ALL_DIMENSIONS),
                  st.integers(min_value=1, max_value=10**6)),
        min_size=1, max_size=120),
        st.integers(min_value=2, max_value=5),
        st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_merge_partition_invariance(self, charges, n_parts, rng):
        """Any split of the charge stream over shard ledgers, merged in
        any order, reproduces the single-ledger books bit-for-bit."""
        combined = make_ledger()
        shards = [make_ledger() for _ in range(n_parts)]
        for i, (who, dim, n) in enumerate(charges):
            for target in (combined, shards[i % n_parts]):
                with target.scoped(who, plane="orb", operation="op"):
                    target.charge(dim, n)
        rng.shuffle(shards)
        merged = RequestCostLedger.merged(shards)
        assert merged.total.as_dict() == combined.total.as_dict()
        assert {k: v.as_dict() for k, v in merged.entries.items()} \
            == {k: v.as_dict() for k, v in combined.entries.items()}
        merged_parts = {k: v.as_dict() for k, v
                        in merged.partition_by("principal").items()}
        combined_parts = {k: v.as_dict() for k, v
                          in combined.partition_by("principal").items()}
        assert merged_parts == combined_parts
        summed = {dim: 0 for dim in ALL_DIMENSIONS}
        for vec in merged_parts.values():
            for dim, val in vec.items():
                summed[dim] += val
        assert summed == merged.total.as_dict()

    def test_accounting_is_zero_event(self):
        """Ledger bookkeeping schedules nothing and dispatches nothing."""
        sim = Simulator()
        ledger = RequestCostLedger(sim)
        with ledger.scoped("p", plane="orb", operation="op"):
            ledger.charge("wal_appends", 5)
        ctx = RequestContext(PLANE_HTTP, principal="p", operation="poll")
        ledger.open_request(ctx)
        ledger.close_request(ctx)
        assert sim.events_dispatched == 0
        assert sim.peek() == math.inf  # nothing scheduled

    def test_golden_e1_parity_accounting_on_vs_off(self):
        """The E1 science row is bit-for-bit identical with the cost
        ledger enabled and removed — accounting never perturbs virtual
        time (the driver's golden E1/E2/E4 gates check the same property
        against the committed tables)."""
        from repro.bench.scenarios import run_app_scalability

        on = run_app_scalability(8, duration=10.0)
        off = run_app_scalability(8, duration=10.0,
                                  accounting_enabled=False)
        science = [k for k in off if not k.startswith("cost_")]
        assert {k: off[k] for k in science} \
            == {k: on[k] for k in science}
        assert on["cost_requests"] > 0
        assert off["cost_requests"] == 0


class TestPinnedEdgeCases:
    """Satellite 2: empty/single-observation behavior, now contractual."""

    def test_log_histogram_empty_quantile_is_zero(self):
        h = LogHistogram()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.0

    def test_log_histogram_single_observation_every_quantile(self):
        for value in (0.0037, 1.0, 812.5, 0.0, -3.0):
            h = LogHistogram()
            h.add(value)
            for q in (0.0, 0.5, 0.99, 1.0):
                assert h.quantile(q) == value, (value, q)

    def test_reservoir_empty_stats_all_zero(self):
        stats = Reservoir().stats()
        assert (stats.count, stats.mean, stats.std) == (0, 0.0, 0.0)
        # the ±inf min/max sentinels must never leak out
        assert stats.minimum == 0.0 and stats.maximum == 0.0
        assert (stats.p50, stats.p90, stats.p99) == (0.0, 0.0, 0.0)

    def test_reservoir_single_observation_everywhere(self):
        r = Reservoir()
        r.add(42.5)
        stats = r.stats()
        assert stats.count == 1 and stats.std == 0.0
        for field in ("mean", "minimum", "p50", "p90", "p99", "maximum"):
            assert getattr(stats, field) == 42.5, field


class TestDispatchProfiler:
    def test_samples_fold_and_export(self):
        # deterministic wall clock: 1 µs per tick → every stride-th
        # event lands past the sampling interval
        tick = {"ns": 0}

        def wall():
            tick["ns"] += 1000
            return tick["ns"]

        profiler = DispatchProfiler(interval_us=1, stride=4,
                                    wall_clock=wall)
        sim = Simulator()
        profiler.install(sim)

        def proc(sim):
            for _ in range(64):
                yield sim.timeout(0.1)

        sim.spawn(proc(sim), name="busy-loop")
        sim.run()
        profiler.uninstall()
        assert sim.profiler is None
        assert profiler.sample_count > 0
        assert profiler.events_seen == sim.events_dispatched
        folded = profiler.folded()
        assert any("busy-loop" in stack for stack in folded)
        collapsed = profiler.collapsed()
        assert collapsed.endswith("\n")
        for line in collapsed.strip().splitlines():
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) >= 1 and ";" in stack
        chrome = profiler.to_chrome()
        assert chrome["metadata"]["samples"] == profiler.sample_count
        assert all(ev["ph"] == "X" for ev in chrome["traceEvents"])

    def test_uninstalled_kernel_runs_clean(self):
        sim = Simulator()
        profiler = DispatchProfiler()
        profiler.install(sim)
        profiler.uninstall()
        done = sim.timeout(1.0)
        sim.run(until=done)
        assert profiler.sample_count == 0


class TestInterceptorSeam:
    def test_rejected_request_is_still_accounted(self):
        """Accounting sits before admission in the chain: a request shed
        deeper in (an exhausted token bucket) still costs its principal."""
        from repro.obs import AccountingInterceptor
        from repro.pipeline.core import Interceptor, Pipeline

        class Shed(Interceptor):
            name = "shed"

            def before(self, ctx):
                raise RuntimeError("bucket exhausted")

        ledger = make_ledger()
        pipeline = Pipeline([AccountingInterceptor(ledger), Shed()])
        ctx = RequestContext(PLANE_HTTP, principal="mallory",
                             operation="flood")
        with pytest.raises(RuntimeError):
            next(pipeline.execute(ctx, lambda c: None))
        vec = ledger.entries[("mallory", "-", PLANE_HTTP, "flood")]
        assert vec.as_dict()["requests"] == 1
        assert vec.as_dict()["errors"] == 1

    def test_successful_request_through_chain(self):
        from repro.obs import AccountingInterceptor
        from repro.pipeline.core import Pipeline

        ledger = make_ledger()
        pipeline = Pipeline([AccountingInterceptor(ledger)])
        ctx = RequestContext(PLANE_HTTP, principal="alice",
                             operation="poll")
        with pytest.raises(StopIteration) as stop:
            next(pipeline.execute(ctx, lambda c: "ok"))
        assert stop.value.value == "ok"
        vec = ledger.entries[("alice", "-", PLANE_HTTP, "poll")].as_dict()
        assert vec["requests"] == 1 and vec["errors"] == 0
