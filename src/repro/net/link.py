"""Point-to-point duplex links with latency and bandwidth.

Transmission time (``size / bandwidth``) serializes on the link — frames
queue behind one another per direction — while propagation latency is
pipelined, the standard store-and-forward model.

The transmitter is a fused FIFO queue per direction rather than a
:class:`~repro.sim.Resource`: starting a transmission on a free transmitter
schedules exactly one pooled kernel callback at transmission-complete time
(zero events when the transfer time is zero), instead of the
request/grant/timeout/release event chain a counted resource needs.  The
queueing behaviour — FIFO per direction, zero-cost transfers never
serialize — is identical.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, Optional, Tuple

from repro.sim import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator


def _succeed_event(ev: SimEvent) -> None:
    ev.succeed()


class Link:
    """A duplex link between two hosts.

    Parameters
    ----------
    latency:
        One-way propagation delay in seconds.
    bandwidth:
        Bytes per second.  ``inf`` models an uncontended abstraction.
    kind:
        ``"lan"`` or ``"wan"`` — used by :class:`~repro.net.trace.TrafficTrace`
        to separate intra-domain from inter-domain traffic (experiment E4).
    """

    def __init__(self, sim: "Simulator", a: str, b: str, latency: float,
                 bandwidth: float = float("inf"), kind: str = "lan") -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        if a == b:
            raise ValueError("link endpoints must differ")
        self.sim = sim
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.kind = kind
        #: precomputed so the hot path never rebuilds float("inf"); the
        #: division itself must stay ``size / bandwidth`` bit-for-bit
        self._infinite_bw = bandwidth == float("inf")
        # One transmitter per direction: the in-flight completion callback
        # plus a FIFO of waiting transmissions.
        self._inflight: Dict[str, Optional[Tuple[Callable, Any]]] = {
            a: None, b: None}
        self._queue: Dict[str, Deque[Tuple[int, Callable, Any]]] = {
            a: deque(), b: deque()}

    @property
    def ends(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, host: str) -> str:
        """The opposite endpoint of ``host``."""
        if host == self.a:
            return self.b
        if host == self.b:
            return self.a
        raise ValueError(f"{host!r} is not an endpoint of {self!r}")

    def transfer_time(self, size: int) -> float:
        """Pure transmission time for ``size`` bytes (no queueing)."""
        if self._infinite_bw:
            return 0.0
        return size / self.bandwidth

    def start_tx(self, src: str, size: int,
                 done: Callable[[Any], None], arg: Any) -> None:
        """Occupy the ``src``-side transmitter for ``size`` bytes.

        ``done(arg)`` runs at transmission-complete time — propagation
        latency is the caller's business.  Transmissions are strictly FIFO
        per direction; a zero-cost transfer on a free transmitter completes
        synchronously (no event at all).
        """
        inflight = self._inflight[src]  # KeyError doubles as validation
        if inflight is not None or self._queue[src]:
            self._queue[src].append((size, done, arg))
            return
        if self._infinite_bw:
            done(arg)
            return
        t = size / self.bandwidth
        if t > 0.0:
            self._inflight[src] = (done, arg)
            self.sim.schedule_fn(t, self._tx_done, src)
        else:
            done(arg)

    def _tx_done(self, src: str) -> None:
        done, arg = self._inflight[src]
        self._inflight[src] = None
        done(arg)
        queue = self._queue[src]
        while queue:
            size, done, arg = queue.popleft()
            t = self.transfer_time(size)
            if t > 0.0:
                self._inflight[src] = (done, arg)
                self.sim.schedule_fn(t, self._tx_done, src)
                break
            done(arg)

    def transmit(self, src: str, size: int):
        """Process: occupy the ``src``-side transmitter for the transfer,
        then wait the propagation latency.  Yields; returns at delivery time.
        """
        if src != self.a and src != self.b:
            raise KeyError(src)
        ev = SimEvent(self.sim)
        self.start_tx(src, size, _succeed_event, ev)
        yield ev
        if self.latency > 0:
            yield self.sim.timeout(self.latency)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Link {self.a}<->{self.b} {self.kind} "
                f"lat={self.latency * 1e3:.1f}ms>")
