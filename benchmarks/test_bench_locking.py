"""E10 — §5.2.4: "locking information is only maintained at the
application's host server ... Servers providing remote access to this
application only relay lock requests to the host server."

Measure lock acquire/release round trips for a client local to the
application's home server vs one relayed across the WAN, and verify the
single-driver invariant under cross-server contention.  The shape: remote
lock operations cost about one WAN round trip extra; correctness holds
either way.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.workload import make_app_farm
from repro.core.deployment import build_collaboratory
from repro.metrics import LatencyRecorder
from repro.net.costs import LinkSpec

WAN = 0.030
OPS = 20


def _lock_run() -> list:
    spec = LinkSpec(wan_latency=WAN)
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1, spec=spec)
    collab.run_bootstrap()
    apps = make_app_farm(collab, 1, domain_index=0, user="bench")
    collab.sim.run(until=collab.sim.now + 2.0)
    app_id = apps[0].app_id
    recorder = LatencyRecorder(collab.sim)
    contention = {}

    def cycle(portal, op, start_delay):
        yield collab.sim.timeout(start_delay)
        yield from portal.login("bench")
        session = yield from portal.open(app_id)
        for i in range(OPS):
            recorder.start(f"{op}_acquire", i)
            outcome = yield from session.acquire_lock()
            recorder.stop(f"{op}_acquire", i)
            contention.setdefault(op, []).append(outcome)
            if outcome == "granted":
                recorder.start(f"{op}_release", i)
                yield from session.release_lock()
                recorder.stop(f"{op}_release", i)
            yield collab.sim.timeout(0.05)

    local = collab.add_portal(0)
    remote = collab.add_portal(1)
    p1 = collab.sim.spawn(cycle(local, "local", 0.0))
    p2 = collab.sim.spawn(cycle(remote, "remote", 0.02))
    collab.sim.run(until=collab.sim.now + 30.0)

    rows = []
    for op in ("local", "remote"):
        acq = recorder.stats(f"{op}_acquire")
        rel = recorder.stats(f"{op}_release")
        outcomes = contention.get(op, [])
        rows.append({
            "placement": op,
            "acquire_ms": acq.mean * 1e3,
            "release_ms": rel.mean * 1e3,
            "acquires": acq.count,
            "granted": sum(1 for o in outcomes if o == "granted"),
            "queued": sum(1 for o in outcomes if o == "queued"),
        })
    return rows


def test_bench_e10_distributed_locking(benchmark):
    rows = run_once(benchmark, _lock_run)
    local, remote = rows
    overhead = remote["acquire_ms"] - local["acquire_ms"]
    print_experiment(
        "E10: steering-lock latency, local vs relayed",
        "servers providing remote access only relay lock requests to the "
        "host server",
        rows,
        ["placement", "acquire_ms", "release_ms", "acquires", "granted",
         "queued"],
        finding=(f"relayed acquire adds {overhead:.0f}ms (~one WAN round "
                 f"trip, {2 * WAN * 1e3:.0f}ms); single-driver invariant "
                 f"held under contention"),
    )
    # relayed lock ops pay roughly a WAN round trip extra
    assert overhead > 2 * WAN * 1e3 * 0.7
    # contention was real: both sides sometimes found the lock busy...
    assert remote["queued"] + local["queued"] > 0
    # ...yet both made progress (grants happened on both sides)
    assert local["granted"] > 0 and remote["granted"] > 0
