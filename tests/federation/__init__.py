"""Tests for the location-transparency layer (repro.federation)."""
