"""Property tests for the interceptor chain contract (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline import Interceptor, Pipeline, RequestContext
from repro.pipeline.core import PLANE_HTTP


class Tracer(Interceptor):
    """Records every hook invocation into a shared log."""

    def __init__(self, label, log, raise_before=None, short_circuit=None,
                 absorb=False):
        self.label = label
        self.log = log
        self.raise_before = raise_before
        self.short_circuit = short_circuit
        self.absorb = absorb

    def before(self, ctx):
        self.log.append(("before", self.label))
        if self.raise_before is not None:
            raise self.raise_before
        if self.short_circuit is not None:
            ctx.response = self.short_circuit

    def after(self, ctx):
        self.log.append(("after", self.label))

    def on_error(self, ctx):
        self.log.append(("on_error", self.label))
        if self.absorb:
            ctx.attrs["error_type"] = type(ctx.error).__name__
            ctx.response = "absorbed"
            ctx.error = None


def run(pipeline, handler, ctx=None):
    """Drive a non-yielding pipeline to completion synchronously."""
    ctx = ctx or RequestContext(PLANE_HTTP)
    gen = pipeline.execute(ctx, handler)
    try:
        next(gen)
    except StopIteration as stop:
        return ctx, stop.value
    raise AssertionError("plain-handler pipeline must not yield")


@settings(max_examples=60)
@given(n=st.integers(min_value=0, max_value=6))
def test_before_in_order_after_in_reverse(n):
    log = []
    chain = [Tracer(i, log) for i in range(n)]
    calls = []
    _, result = run(Pipeline(chain), lambda ctx: calls.append(1) or "ok")
    assert result == "ok"
    assert calls == [1]  # handler ran exactly once
    assert log[:n] == [("before", i) for i in range(n)]
    assert log[n:] == [("after", i) for i in reversed(range(n))]


@settings(max_examples=60)
@given(n=st.integers(min_value=1, max_value=6), data=st.data())
def test_raising_before_short_circuits(n, data):
    fail_at = data.draw(st.integers(min_value=0, max_value=n - 1))
    log = []
    boom = RuntimeError("rejected")
    chain = [Tracer(i, log,
                    raise_before=boom if i == fail_at else None)
             for i in range(n)]
    calls = []
    try:
        run(Pipeline(chain), lambda ctx: calls.append(1))
        raised = False
    except RuntimeError:
        raised = True
    assert raised  # unabsorbed error re-raises at the caller
    assert calls == []  # handler skipped
    # before hooks ran 0..fail_at, nothing later
    assert log[:fail_at + 1] == [("before", i) for i in range(fail_at + 1)]
    # unwind visits only the interceptors whose before completed, reversed
    assert log[fail_at + 1:] == [("on_error", i)
                                 for i in reversed(range(fail_at))]


@settings(max_examples=60)
@given(n=st.integers(min_value=1, max_value=6), data=st.data())
def test_response_short_circuit_skips_handler(n, data):
    hit = data.draw(st.integers(min_value=0, max_value=n - 1))
    log = []
    chain = [Tracer(i, log,
                    short_circuit="cached" if i == hit else None)
             for i in range(n)]
    calls = []
    ctx, result = run(Pipeline(chain), lambda ctx: calls.append(1))
    assert result == "cached"
    assert calls == []  # successful short-circuit: no handler
    # the short-circuiting interceptor itself still unwinds (it entered)
    assert log == ([("before", i) for i in range(hit + 1)]
                   + [("after", i) for i in reversed(range(hit + 1))])
    assert ctx.error is None


@settings(max_examples=60)
@given(n=st.integers(min_value=1, max_value=5), data=st.data())
def test_absorbed_error_looks_successful_to_outer_interceptors(n, data):
    absorber_at = data.draw(st.integers(min_value=0, max_value=n - 1))
    log = []
    chain = [Tracer(i, log, absorb=(i == absorber_at)) for i in range(n)]

    def handler(ctx):
        raise ValueError("handler blew up")

    ctx, result = run(Pipeline(chain), handler)
    assert result == "absorbed"
    assert ctx.error is None
    assert ctx.attrs["error_type"] == "ValueError"
    unwind = log[n:]
    # inner interceptors (after the absorber, unwound first) see the error;
    # the absorber clears it; outer ones see a completed request
    expected = ([("on_error", i)
                 for i in reversed(range(absorber_at, n))]
                + [("after", i) for i in reversed(range(absorber_at))])
    assert unwind == expected


def test_generator_handler_is_driven_and_unwound():
    log = []
    pipeline = Pipeline([Tracer("outer", log)])
    ctx = RequestContext(PLANE_HTTP)

    def handler(_ctx):
        yield "tick"
        return "done"

    gen = pipeline.execute(ctx, handler)
    assert next(gen) == "tick"  # the handler's events pass through
    try:
        gen.send(None)
        raise AssertionError("pipeline should have finished")
    except StopIteration as stop:
        assert stop.value == "done"
    assert log == [("before", "outer"), ("after", "outer")]


def test_clock_stamps_timings():
    now = {"t": 10.0}
    pipeline = Pipeline([], clock=lambda: now["t"])
    ctx = RequestContext(PLANE_HTTP)

    def handler(_ctx):
        yield "work"
        now["t"] = 12.5
        return "ok"

    gen = pipeline.execute(ctx, handler)
    next(gen)
    try:
        gen.send(None)
    except StopIteration:
        pass
    assert ctx.started_at == 10.0
    assert ctx.finished_at == 12.5
    assert ctx.elapsed == 2.5


def test_find_and_extended():
    class A(Interceptor):
        pass

    class B(Interceptor):
        pass

    a, b = A(), B()
    pipeline = Pipeline([a])
    assert pipeline.find(A) is a
    assert pipeline.find(B) is None
    longer = pipeline.extended(b)
    assert longer.find(B) is b
    assert pipeline.find(B) is None  # original untouched
    assert [type(i) for i in longer.interceptors] == [A, B]
