"""E5 — §5.2.3: "Since clients always interact through the server closest
to them and the broadcast messages for collaborative updates are generated
at this server, these messages don't have to travel large distances across
the network.  This reduces overall network traffic as well as client
latencies when the servers are geographically far away."

Same group topology as E4, sweeping WAN latency; measure client-perceived
update staleness.  The shape to reproduce: the P2P advantage grows with
geographic (WAN) distance.
"""

from benchmarks.conftest import run_once
from repro.bench import print_experiment
from repro.bench.scenarios import run_collab_scenario

WAN_LATENCIES = (0.020, 0.060, 0.120)
DURATION = 20.0


def test_bench_e5_collab_latency(benchmark):
    def scenario():
        rows = []
        for wan in WAN_LATENCIES:
            for mode in ("central", "p2p"):
                rows.append(run_collab_scenario(
                    mode=mode, n_domains=3, clients_per_domain=4,
                    duration=DURATION, wan_latency=wan))
        return rows

    rows = run_once(benchmark, scenario)
    print_experiment(
        "E5: client update latency vs WAN distance",
        "P2P reduces client latencies when the servers are geographically "
        "far away",
        rows,
        ["mode", "wan_latency_ms", "mean_update_latency_ms",
         "p90_update_latency_ms", "updates_seen"],
        finding=_finding(rows),
    )
    by_key = {(r["mode"], round(r["wan_latency_ms"])): r for r in rows}
    for wan_ms in (60, 120):
        central = by_key[("central", wan_ms)]
        p2p = by_key[("p2p", wan_ms)]
        # p2p is faster once WAN distance matters
        assert (p2p["mean_update_latency_ms"]
                < central["mean_update_latency_ms"])
    # and the gap widens with distance
    gap = {w: (by_key[("central", w)]["mean_update_latency_ms"]
               - by_key[("p2p", w)]["mean_update_latency_ms"])
           for w in (20, 60, 120)}
    assert gap[120] > gap[20]


def _finding(rows) -> str:
    pairs = {}
    for r in rows:
        pairs.setdefault(round(r["wan_latency_ms"]), {})[r["mode"]] = \
            r["mean_update_latency_ms"]
    parts = [f"@{w}ms WAN: central {v['central']:.0f}ms vs "
             f"p2p {v['p2p']:.0f}ms" for w, v in sorted(pairs.items())]
    return "; ".join(parts)
