"""HTTP request/response model (the subset the collaboratory needs)."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.wire.serialize import register_codec

_request_ids = itertools.count(1)

GET = "GET"
POST = "POST"

OK = 200
BAD_REQUEST = 400
UNAUTHORIZED = 401
FORBIDDEN = 403
NOT_FOUND = 404
CONFLICT = 409
SERVER_ERROR = 500

_status_text = {
    OK: "OK",
    BAD_REQUEST: "Bad Request",
    UNAUTHORIZED: "Unauthorized",
    FORBIDDEN: "Forbidden",
    NOT_FOUND: "Not Found",
    CONFLICT: "Conflict",
    SERVER_ERROR: "Internal Server Error",
}


@register_codec
class HttpRequest:
    """A GET or POST to a servlet path.

    ``params`` carries query/form parameters; ``body`` carries a serialized
    object for POSTs (the paper moves Java objects in POST bodies).  The
    ``cookie`` holds the session id once the server has issued one.
    """

    def __init__(self, method: str, path: str,
                 params: Optional[Dict[str, Any]] = None, body: Any = None,
                 cookie: str = "") -> None:
        if method not in (GET, POST):
            raise ValueError(f"unsupported method {method!r}")
        self.request_id = next(_request_ids)
        self.method = method
        self.path = path
        self.params = params or {}
        self.body = body
        self.cookie = cookie

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HttpRequest #{self.request_id} {self.method} {self.path}>"


@register_codec
class HttpResponse:
    """The reply to one request; correlated by ``request_id``."""

    def __init__(self, request_id: int, status: int = OK, body: Any = None,
                 set_cookie: str = "") -> None:
        self.request_id = request_id
        self.status = status
        self.body = body
        self.set_cookie = set_cookie

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def reason(self) -> str:
        """Human-readable status text."""
        return _status_text.get(self.status, str(self.status))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<HttpResponse #{self.request_id} {self.status} "
                f"{self.reason}>")
