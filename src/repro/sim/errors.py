"""Exception types used by the simulation kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class StopSimulation(Exception):
    """Raised internally (or by user code) to end :meth:`Simulator.run`.

    The positional argument, if any, becomes the return value of ``run``.
    """

    @property
    def value(self) -> Any:
        return self.args[0] if self.args else None


class Interrupt(Exception):
    """Thrown *into* a process that another process interrupted.

    The interrupting party supplies an arbitrary ``cause`` describing why the
    victim was interrupted (e.g. a steering session being torn down while a
    client is blocked polling for updates).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.args[0]!r})"
