"""Wire formats: serialization and typed messages.

DISCOVER moved Java objects between tiers (servlet responses, CORBA
requests); clients told Response, Error and Update messages apart "using
Java's reflection mechanism, by querying the received object for its class
name" (paper §4.1).  We reproduce both halves:

- :mod:`repro.wire.serialize` — a self-describing binary encoding used to
  compute *realistic byte sizes* for every message that crosses the simulated
  network (and exercised as a real codec: decode(encode(x)) == x).
- :mod:`repro.wire.messages` — the typed message hierarchy; receivers
  dispatch on ``type(msg).__name__`` exactly like the paper's clients.
"""

from repro.wire.messages import (
    AckMessage,
    ChatMessage,
    CommandMessage,
    ControlMessage,
    ErrorMessage,
    LockMessage,
    Message,
    RegisterMessage,
    ResponseMessage,
    UpdateMessage,
    WhiteboardMessage,
    message_type_name,
)
from repro.wire.serialize import (
    SerializationError,
    decode,
    encode,
    encoded_size,
    register_codec,
)

__all__ = [
    "AckMessage",
    "ChatMessage",
    "CommandMessage",
    "ControlMessage",
    "ErrorMessage",
    "LockMessage",
    "Message",
    "RegisterMessage",
    "ResponseMessage",
    "SerializationError",
    "UpdateMessage",
    "WhiteboardMessage",
    "decode",
    "encode",
    "encoded_size",
    "message_type_name",
    "register_codec",
]
