"""The simulator: a clock and a bucketed (calendar-style) schedule.

The schedule has two tiers:

- **Current-instant buckets** — two plain deques (one per priority class,
  ``URGENT`` and ``NORMAL``) holding events scheduled for *exactly* ``now``.
  The dominant case in every scenario is an event triggered at the current
  instant (``succeed()``, process boots, zero timeouts, fused network
  callbacks); those dispatch O(1) with no tuple allocation and no heap
  traffic.
- **Overflow heap** — a classic ``heapq`` of *(time, priority, seq, event)*
  tuples for everything in the future.  When the buckets drain, the kernel
  advances the clock to the heap's earliest time and moves *every* entry at
  that instant into the buckets in (priority, seq) order, so cross-tier
  ordering is exactly the ordering a single global heap would produce.

``seq`` is a monotonically increasing counter so simultaneous far-future
events are processed in insertion order; bucket order is insertion order by
construction.  This is what makes the whole reproduction deterministic — a
property-based differential test (``tests/sim/test_calendar_queue.py``) pins
the dispatch order against a reference single-heap schedule.

The kernel also keeps a free list of :class:`_PooledCallback` events for
internal fire-and-forget callbacks (network delivery chains, timers), so the
hot path schedules without allocating an event, a callbacks list, or a heap
tuple per occurrence.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import SimEvent, Timeout
from repro.sim.process import Process

#: Default priority for ordinary events.
NORMAL = 1
#: Priority used by the kernel for urgent bookkeeping (process resumption).
URGENT = 0


class _ScheduledCall:
    """Adapter turning a zero-arg function into an event callback.

    Used by :meth:`Simulator.call_at` / :meth:`Simulator.call_later` instead
    of a per-call lambda (no closure cell, one slotted instance).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn

    def __call__(self, _event: SimEvent) -> None:
        self.fn()


class _PooledCallback(SimEvent):
    """A recyclable internal event that runs one stored function.

    The event is its own (only) callback: when the kernel processes it, the
    stored function runs and the instance immediately returns itself to the
    simulator's free list.  Only kernel-internal machinery may use these —
    they are never handed to user code, never waited on, and never fail —
    which is what makes recycling safe.
    """

    __slots__ = ("fn", "arg")

    def __init__(self, sim: "Simulator") -> None:
        super().__init__(sim)
        self.callbacks = [self]
        self._value = None
        self.fn: Optional[Callable[[Any], None]] = None
        self.arg: Any = None

    def __call__(self, _event: SimEvent) -> None:
        fn, arg = self.fn, self.arg
        self.fn = self.arg = None
        self.callbacks = [self]
        self._value = None
        self.sim._cb_pool.append(self)
        fn(arg)


class Simulator:
    """Discrete-event simulator with virtual time.

    Typical use::

        sim = Simulator()

        def producer(sim, store):
            for i in range(3):
                yield sim.timeout(1.0)
                yield store.put(i)

        store = Store(sim)
        sim.spawn(producer(sim, store))
        sim.run()
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        #: far-future overflow: (time, priority, seq, event) tuples
        self._heap: List[Tuple[float, int, int, SimEvent]] = []
        self._seq = 0
        #: current-instant buckets, one per priority class
        self._bucket_urgent: Deque[SimEvent] = deque()
        self._bucket_normal: Deque[SimEvent] = deque()
        #: free list of recycled internal callback events
        self._cb_pool: List[_PooledCallback] = []
        self._active_process: Optional[Process] = None
        #: total events ever dispatched (step() and run()); the cost
        #: ledger reads deltas of this to attribute "sim events" per request
        self.events_dispatched = 0
        #: optional repro.obs.DispatchProfiler — when set (before run()),
        #: every event dispatch is routed through it for interval sampling
        self.profiler = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event creation -----------------------------------------------------
    def event(self) -> SimEvent:
        """Create a pending event to be triggered manually."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` virtual time units."""
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process driven by ``generator``."""
        return Process(self, generator, name=name)

    # alias matching SimPy vocabulary
    process = spawn

    def call_at(self, time: float, fn: Callable[[], None]) -> SimEvent:
        """Run ``fn()`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"call_at({time}) is in the past (now={self._now})")
        ev = self.timeout(time - self._now)
        ev.callbacks.append(_ScheduledCall(fn))
        return ev

    def call_later(self, delay: float, fn: Callable[[], None]) -> SimEvent:
        """Run ``fn()`` after ``delay`` virtual time units."""
        ev = self.timeout(delay)
        ev.callbacks.append(_ScheduledCall(fn))
        return ev

    # -- scheduling (kernel internal) ----------------------------------------
    def _push_event(self, event: SimEvent, delay: float = 0.0,
                    priority: int = NORMAL) -> None:
        """Put a triggered event on the schedule for processing."""
        if delay == 0.0:
            # Current instant: O(1) bucket append, no tuple, no heap.
            if priority == NORMAL:
                self._bucket_normal.append(event)
            else:
                self._bucket_urgent.append(event)
        else:
            self._seq += 1
            heapq.heappush(self._heap,
                           (self._now + delay, priority, self._seq, event))

    def schedule_fn(self, delay: float, fn: Callable[[Any], None],
                    arg: Any = None, priority: int = NORMAL) -> None:
        """Run ``fn(arg)`` after ``delay`` using a pooled internal event.

        The event is recycled the moment it is processed, so this is the
        allocation-free way for infrastructure (network delivery, timers
        that nobody waits on) to schedule work.  The event is not returned
        — it must never be waited on or cancelled.
        """
        pool = self._cb_pool
        ev = pool.pop() if pool else _PooledCallback(self)
        ev.fn = fn
        ev.arg = arg
        self._push_event(ev, delay=delay, priority=priority)

    # -- running -------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._bucket_urgent or self._bucket_normal:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

    def _advance(self) -> bool:
        """Move the clock to the heap's earliest instant and bucket every
        event scheduled there.  Returns False if the schedule is empty."""
        heap = self._heap
        if not heap:
            return False
        when = heap[0][0]
        self._now = when
        pop = heapq.heappop
        urgent, normal = self._bucket_urgent, self._bucket_normal
        while heap and heap[0][0] == when:
            item = pop(heap)
            if item[1] == NORMAL:
                normal.append(item[3])
            else:
                urgent.append(item[3])
        return True

    def step(self) -> None:
        """Process exactly one event.

        Shares the run() dispatch path exactly: same bucket selection, same
        fast ``_ok`` / ``_defused`` attribute reads — a failed, defused
        event behaves identically under ``step()`` and ``run()``.
        """
        if not (self._bucket_urgent or self._bucket_normal):
            if not self._advance():
                raise SimulationError("step() on an empty schedule")
        if self._bucket_urgent:
            event = self._bucket_urgent.popleft()
        else:
            event = self._bucket_normal.popleft()
        callbacks, event.callbacks = event.callbacks, None
        self.events_dispatched += 1
        if self.profiler is None:
            for cb in callbacks:
                cb(event)
        else:
            self.profiler.dispatch(event, callbacks)
        if not event._ok and not event._defused:
            # A failed event nobody waited on: surface the error.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run until the schedule is empty, a time, or an event.

        ``until`` may be ``None`` (drain everything), a number (absolute
        virtual time to stop at), or a :class:`SimEvent` (stop when it has
        been processed; its value is returned).
        """
        stop_event: Optional[SimEvent] = None
        if until is None:
            pass
        elif isinstance(until, SimEvent):
            stop_event = until
            if stop_event.processed:
                return stop_event.value
            stop_event.callbacks.append(self._stop_on_event)
        else:
            at = float(until)
            if at < self._now:
                raise SimulationError(
                    f"run(until={at}) is in the past (now={self._now})")
            # A plain marker event at the stop time.
            marker = self.timeout(at - self._now)
            stop_event = marker
            marker.callbacks.append(self._stop_on_event)

        # Inlined dispatch with locals bound outside the loop — this is the
        # hottest loop in the repository (every event of every scenario).
        heap = self._heap
        urgent = self._bucket_urgent
        normal = self._bucket_normal
        pop = heapq.heappop
        profiler = self.profiler
        try:
            while True:
                if urgent:
                    event = urgent.popleft()
                elif normal:
                    event = normal.popleft()
                elif heap:
                    # Advance: bucket every event at the next instant so
                    # cross-tier ordering matches a single global heap.
                    when = heap[0][0]
                    self._now = when
                    while heap and heap[0][0] == when:
                        item = pop(heap)
                        if item[1] == NORMAL:
                            normal.append(item[3])
                        else:
                            urgent.append(item[3])
                    continue
                else:
                    break
                callbacks, event.callbacks = event.callbacks, None
                # Kept live (not a loop local): the cost ledger reads
                # deltas of this counter *mid-run* to attribute events.
                self.events_dispatched += 1
                if profiler is None:
                    for cb in callbacks:
                        cb(event)
                else:
                    profiler.dispatch(event, callbacks)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: surface the error.
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        if stop_event is not None and not stop_event.processed:
            raise SimulationError(
                "run() schedule drained before the `until` event fired")
        return None

    @staticmethod
    def _stop_on_event(event: SimEvent) -> None:
        if not event._ok:
            # Surface the failure (e.g. an exception escaping the process
            # run() was waiting on) instead of silently returning None.
            event.defuse()
            raise event._value
        raise StopSimulation(event._value)
