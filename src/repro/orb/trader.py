"""CORBA trader service — the paper's "minimalist trader".

§5.2.1: "In our prototype we have implemented a minimalist trader service on
top of the CORBA naming service.  All DISCOVER servers are identified by the
service-id 'DISCOVER'.  The service offer ... encapsulates the CORBA object
reference and a list of properties defined as name-value pairs.  Thus an
object can be identified based on the service it provides or its properties
list."

We reproduce that layering: offers are *stored through a NamingService
instance* under ``trader/<service-id>/<n>`` names, with the property lists
kept in a side table, and queries match on service id plus property
constraints.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.orb.errors import ObjectNotFound
from repro.orb.naming import NamingService
from repro.orb.reference import ObjectRef
from repro.wire.serialize import register_codec

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Simulator

_offer_seq = itertools.count(1)


@register_codec
class ServiceOffer:
    """A service-offer pair: reference + name-value property list."""

    def __init__(self, service_id: str, ref: ObjectRef,
                 properties: Optional[dict] = None,
                 offer_id: str = "") -> None:
        self.service_id = service_id
        self.ref = ref
        self.properties = properties or {}
        self.offer_id = offer_id or f"offer-{next(_offer_seq)}"

    def matches(self, constraints: Optional[dict]) -> bool:
        """True if every constraint name-value pair equals a property."""
        if not constraints:
            return True
        return all(self.properties.get(k) == v for k, v in constraints.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServiceOffer {self.service_id} {self.offer_id} {self.ref}>"


class TraderService:
    """Service discovery by service id and property constraints.

    Layered on a :class:`NamingService` exactly like the paper's prototype:
    each exported offer's reference is bound under
    ``trader/<service_id>/<offer_id>``, so a plain naming listing shows the
    trader's whole catalogue.

    If ``sim`` and ``match_cost`` are supplied, ``query`` is served as a
    simulation process charging ``match_cost`` per offer examined —
    experiment E7 measures how discovery cost grows with registry size.
    """

    OBJECT_KEY = "TradingService"

    def __init__(self, naming: NamingService,
                 sim: Optional["Simulator"] = None,
                 match_cost: float = 0.0) -> None:
        self.naming = naming
        self.sim = sim
        self.match_cost = match_cost
        self._offers: Dict[str, ServiceOffer] = {}

    # -- exporters ----------------------------------------------------------
    def export(self, offer: ServiceOffer) -> str:
        """Publish an offer; returns its offer id."""
        self._offers[offer.offer_id] = offer
        self.naming.rebind(self._name_for(offer), offer.ref)
        return offer.offer_id

    def withdraw(self, offer_id: str) -> bool:
        """Remove a previously exported offer."""
        offer = self._offers.pop(offer_id, None)
        if offer is None:
            raise ObjectNotFound(f"no offer {offer_id!r}")
        try:
            self.naming.unbind(self._name_for(offer))
        except ObjectNotFound:  # pragma: no cover - defensive
            pass
        return True

    @staticmethod
    def _name_for(offer: ServiceOffer) -> str:
        return f"trader/{offer.service_id}/{offer.offer_id}"

    # -- importers -----------------------------------------------------------
    def query_now(self, service_id: str,
                  constraints: Optional[dict] = None) -> List[ServiceOffer]:
        """Immediate (untimed) query — the pure matching logic."""
        return [o for o in self._offers.values()
                if o.service_id == service_id and o.matches(constraints)]

    def query(self, service_id: str, constraints: Optional[dict] = None):
        """All offers for ``service_id`` whose properties satisfy
        ``constraints``.  Served as a simulation process charging
        ``match_cost`` per offer examined when timing is enabled."""
        matches = self.query_now(service_id, constraints)
        if self.sim is not None and self.match_cost > 0 and self._offers:
            yield self.sim.timeout(self.match_cost * len(self._offers))
        return matches

    def offer_count(self, service_id: Optional[str] = None) -> int:
        """Number of exported offers (optionally for one service id)."""
        if service_id is None:
            return len(self._offers)
        return sum(1 for o in self._offers.values()
                   if o.service_id == service_id)
