"""Interface definitions and typed client stubs.

CORBA systems declare interfaces in IDL and generate *stubs* (client-side
proxies) and *skeletons* (server-side dispatchers).  This module is the
reproduction's IDL: an :class:`Interface` lists operations with their
arities, :func:`make_stub` builds a stub object whose methods are generator
helpers wrapping :meth:`Orb.invoke`, and :func:`validate_servant` checks a
servant implements an interface before activation.

The two DISCOVER interface levels (§3, §5.1) are declared with this in
:mod:`repro.core.interfaces`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.orb.errors import BadOperation, OrbError

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb
    from repro.orb.reference import ObjectRef


@dataclass(frozen=True)
class Operation:
    """One remotely invocable operation."""

    name: str
    #: positional parameter names (documentation + arity checking)
    params: Tuple[str, ...] = ()
    #: if True the stub issues a oneway (no reply) invocation
    oneway: bool = False
    doc: str = ""


class Interface:
    """An ordered collection of operations, with inheritance."""

    def __init__(self, name: str, operations: Tuple[Operation, ...] = (),
                 bases: Tuple["Interface", ...] = ()) -> None:
        self.name = name
        self._ops: Dict[str, Operation] = {}
        for base in bases:
            self._ops.update(base._ops)
        for op in operations:
            if op.name in self._ops:
                raise OrbError(f"duplicate operation {op.name!r} in "
                               f"interface {name!r}")
            self._ops[op.name] = op

    def operation(self, name: str) -> Operation:
        try:
            return self._ops[name]
        except KeyError:
            raise BadOperation(
                f"interface {self.name!r} has no operation {name!r}") from None

    def operations(self) -> Tuple[Operation, ...]:
        return tuple(self._ops.values())

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Interface {self.name} ({len(self._ops)} ops)>"


def validate_servant(servant: object, interface: Interface) -> None:
    """Raise :class:`OrbError` unless ``servant`` implements ``interface``.

    Checks that every declared operation exists, is callable, and accepts
    the declared positional arity (generous with ``*args``/``**kwargs``).
    """
    for op in interface.operations():
        method = getattr(servant, op.name, None)
        if method is None or not callable(method):
            raise OrbError(
                f"{type(servant).__name__} does not implement "
                f"{interface.name}.{op.name}")
        try:
            sig = inspect.signature(method)
        except (TypeError, ValueError):  # pragma: no cover - builtins
            continue
        has_var = any(p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
                      for p in sig.parameters.values())
        if has_var:
            continue
        positional = [p for p in sig.parameters.values()
                      if p.kind in (p.POSITIONAL_ONLY,
                                    p.POSITIONAL_OR_KEYWORD)]
        required = [p for p in positional if p.default is p.empty]
        if len(required) > len(op.params) or len(positional) < len(op.params):
            raise OrbError(
                f"{type(servant).__name__}.{op.name} arity mismatch: "
                f"interface declares {len(op.params)} parameter(s), "
                f"servant requires {len(required)}")


class Stub:
    """Client-side proxy for one remote object behind an interface.

    Each declared operation becomes a method.  Two-way operations are
    generator helpers (``result = yield from stub.op(...)``); oneway
    operations are plain calls.  Undeclared operations raise
    :class:`BadOperation` locally — before anything crosses the wire.
    """

    def __init__(self, orb: "Orb", ref: "ObjectRef", interface: Interface,
                 timeout: Optional[float] = None) -> None:
        self._orb = orb
        self._ref = ref
        self._interface = interface
        self._timeout = timeout

    @property
    def ref(self) -> "ObjectRef":
        return self._ref

    @property
    def interface(self) -> Interface:
        return self._interface

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        op = self._interface.operation(name)  # raises BadOperation
        if op.oneway:
            def oneway_call(*args, **kwargs):
                self._orb.invoke_oneway(self._ref, op.name, *args, **kwargs)
            oneway_call.__name__ = op.name
            return oneway_call

        def call(*args, **kwargs):
            return (yield from self._orb.invoke(
                self._ref, op.name, *args,
                timeout=kwargs.pop("timeout", self._timeout), **kwargs))
        call.__name__ = op.name
        return call

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Stub {self._interface.name} -> {self._ref}>"


def make_stub(orb: "Orb", ref: "ObjectRef", interface: Interface,
              timeout: Optional[float] = None) -> Stub:
    """Build a typed client stub for ``ref``."""
    return Stub(orb, ref, interface, timeout)
