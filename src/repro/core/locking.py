"""Distributed steering locks.

§5.2.4: "A simple locking mechanism is used to ensure that the application
remains in a consistent state during collaborative interactions.  This
ensures that only one client 'drives' (issues commands) the application at
any time.  In a distributed server framework, locking information is only
maintained at the application's host server ... Servers providing remote
access to this application only relay lock requests to the host server."

:class:`LockManager` is that host-server authority: one lock per
application, FIFO wait queue, grant notifications delivered through a
callback so remote grants can be pushed across the CORBA tier.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional


class LockError(Exception):
    """Invalid lock operation (double acquire, foreign release...)."""


class SteeringLock:
    """The single-driver lock of one application."""

    def __init__(self, app_id: str) -> None:
        self.app_id = app_id
        self.holder: Optional[str] = None
        self.waiters: Deque[str] = deque()
        #: total grants, for reporting
        self.grants = 0

    @property
    def is_held(self) -> bool:
        return self.holder is not None


class LockManager:
    """All steering locks homed at one server.

    ``on_grant(app_id, client_id)`` is invoked whenever a queued waiter is
    promoted to holder — the server wires this to its client-notification
    path (local FIFO buffer or remote server push).
    """

    def __init__(self,
                 on_grant: Optional[Callable[[str, str], None]] = None) -> None:
        self._locks: Dict[str, SteeringLock] = {}
        self.on_grant = on_grant

    def _lock(self, app_id: str) -> SteeringLock:
        lock = self._locks.get(app_id)
        if lock is None:
            lock = self._locks[app_id] = SteeringLock(app_id)
        return lock

    # -- protocol ----------------------------------------------------------
    def acquire(self, app_id: str, client_id: str) -> str:
        """Request the lock.  Returns ``"granted"`` or ``"queued"``."""
        lock = self._lock(app_id)
        if lock.holder == client_id:
            return "granted"  # idempotent re-acquire
        if client_id in lock.waiters:
            return "queued"
        if lock.holder is None:
            lock.holder = client_id
            lock.grants += 1
            return "granted"
        lock.waiters.append(client_id)
        return "queued"

    def release(self, app_id: str, client_id: str) -> Optional[str]:
        """Release the lock; returns the next holder's id, if any.

        A queued waiter may also withdraw (its id is removed silently).
        Releasing a lock one does not hold raises :class:`LockError`.
        """
        lock = self._lock(app_id)
        if lock.holder != client_id:
            if client_id in lock.waiters:
                lock.waiters.remove(client_id)
                return None
            raise LockError(
                f"{client_id!r} does not hold the lock on {app_id!r}")
        lock.holder = None
        if lock.waiters:
            nxt = lock.waiters.popleft()
            lock.holder = nxt
            lock.grants += 1
            if self.on_grant is not None:
                self.on_grant(app_id, nxt)
            return nxt
        return None

    def holder_of(self, app_id: str) -> Optional[str]:
        """Current driver of ``app_id`` (None if free)."""
        lock = self._locks.get(app_id)
        return lock.holder if lock else None

    def holds(self, app_id: str, client_id: str) -> bool:
        """True if ``client_id`` currently drives ``app_id``."""
        return self.holder_of(app_id) == client_id

    def queue_length(self, app_id: str) -> int:
        lock = self._locks.get(app_id)
        return len(lock.waiters) if lock else 0

    def drop_client(self, client_id: str) -> list:
        """Release/dequeue everything ``client_id`` holds (disconnect).

        Returns the app_ids whose lock changed hands or freed up.
        """
        affected = []
        for app_id, lock in self._locks.items():
            if lock.holder == client_id:
                self.release(app_id, client_id)
                affected.append(app_id)
            elif client_id in lock.waiters:
                lock.waiters.remove(client_id)
        return affected
