"""Shared fixtures for the federation-layer tests."""

import pytest

from repro import AppConfig, build_collaboratory
from repro.apps import SyntheticApp


def cfg(**overrides):
    base = dict(steps_per_phase=2, step_time=0.01,
                interaction_window=0.05, command_service_time=0.001)
    base.update(overrides)
    return AppConfig(**base)


def run(collab, gen):
    return collab.sim.run(until=collab.sim.spawn(gen))


@pytest.fixture
def pair():
    """Two servers, one long-running app homed at server 0."""
    collab = build_collaboratory(2, apps_hosts_per_domain=1,
                                 client_hosts_per_domain=1)
    for server in collab.servers.values():
        server.peer_call_timeout = 2.0
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "wave",
                         acl={"alice": "write", "bob": "read"},
                         config=cfg())
    collab.sim.run(until=3.0)
    return collab, app
