"""Burn-rate engine unit tests with hand-computed windows."""

import pytest

from repro.health import (
    Alert,
    AlertLog,
    SEVERITY_PAGE,
    SEVERITY_TICKET,
    SLOEngine,
    SLOSpec,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class Source:
    """Controllable cumulative (total, bad) counter pair."""

    def __init__(self):
        self.total = 0
        self.bad = 0

    def add(self, good: int, bad: int = 0):
        self.total += good + bad
        self.bad += bad

    def __call__(self):
        return self.total, self.bad


def make_engine():
    clock = Clock()
    engine = SLOEngine(clock=clock)
    source = Source()
    # budget = 0.1; page when both 1s and 2s windows burn >= 5x (i.e.
    # >= 50% bad); ticket when both 2s and 4s windows burn >= 2x (20% bad)
    spec = SLOSpec("err", objective=0.9,
                   fast=(1.0, 2.0, 5.0), slow=(2.0, 4.0, 2.0))
    engine.add(spec, source)
    return clock, engine, source


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SLOSpec("x", kind="throughput")

    def test_objective_bounds(self):
        with pytest.raises(ValueError):
            SLOSpec("x", objective=1.0)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError):
            SLOSpec("x", kind="latency")

    def test_budget(self):
        assert SLOSpec("x", objective=0.999).budget == pytest.approx(0.001)

    def test_duplicate_registration(self):
        clock, engine, _src = make_engine()
        with pytest.raises(ValueError):
            engine.add(SLOSpec("err"), lambda: (0, 0))


class TestBurnRate:
    def test_hand_computed_windows(self):
        clock, engine, source = make_engine()
        # t=0: 10 good requests
        source.add(10)
        engine.observe()
        assert engine.burn_rate("err", 1.0) == 0.0

        # t=1: 10 more, 5 of them bad -> window(1s) = 5/10 bad = 0.5
        # fraction; burn = 0.5 / 0.1 budget = 5.0
        clock.now = 1.0
        source.add(5, bad=5)
        engine.observe()
        assert engine.burn_rate("err", 1.0) == pytest.approx(5.0)
        # window(2s) spans both samples: 15/20 requests, 5 bad ->
        # 0.25 fraction -> burn 2.5... edge is the t=0 sample, so the
        # deltas are total=10, bad=5 -> 0.5 -> 5.0
        assert engine.burn_rate("err", 2.0) == pytest.approx(5.0)

        # t=2: 10 good requests -> window(1s) deltas from t=1 sample:
        # total=10, bad=0 -> burn 0
        clock.now = 2.0
        source.add(10)
        engine.observe()
        assert engine.burn_rate("err", 1.0) == 0.0
        # window(2s): edge = t=0 sample -> deltas total 20, bad 5 ->
        # fraction 0.25 -> burn 2.5
        assert engine.burn_rate("err", 2.0) == pytest.approx(2.5)

    def test_empty_and_zero_total(self):
        clock, engine, source = make_engine()
        assert engine.burn_rate("err", 1.0) == 0.0
        engine.observe()  # total 0
        assert engine.burn_rate("err", 1.0) == 0.0


class TestAlerting:
    def test_page_fires_when_both_windows_burn(self):
        clock, engine, source = make_engine()
        source.add(10)
        engine.observe()
        clock.now = 1.0
        source.add(0, bad=10)  # 100% bad over the last second
        engine.observe()
        active = engine.log.active()
        assert [(a.slo, a.severity) for a in active] == [
            ("err", SEVERITY_PAGE), ("err", SEVERITY_TICKET)]
        page = active[0]
        assert page.fired_at == 1.0
        assert page.burn_short == pytest.approx(10.0)

    def test_alert_dedup_and_resolve(self):
        clock, engine, source = make_engine()
        source.add(10)
        engine.observe()
        clock.now = 1.0
        source.add(0, bad=10)
        engine.observe()
        clock.now = 1.5
        source.add(0, bad=5)
        engine.observe()  # still firing: dedup, no second Alert object
        assert engine.log.fired == 2  # page + ticket, once each
        assert engine.log.deduplicated >= 1
        # now a long quiet stretch clears every window
        for t in (3.0, 4.5, 6.0, 8.0):
            clock.now = t
            source.add(100)
            engine.observe()
        assert engine.log.active() == []
        assert engine.log.resolved == 2
        page = [a for a in engine.log.history()
                if a.severity == SEVERITY_PAGE][0]
        assert page.resolved_at is not None

    def test_exemplars_attached_at_fire_time(self):
        clock = Clock()
        engine = SLOEngine(clock=clock, exemplar_fn=lambda start: [7, 9])
        source = Source()
        engine.add(SLOSpec("err", objective=0.9,
                           fast=(1.0, 2.0, 5.0), slow=(2.0, 4.0, 2.0)),
                   source)
        source.add(10)
        engine.observe()
        clock.now = 1.0
        source.add(0, bad=10)
        engine.observe()
        assert engine.log.active()[0].exemplars == [7, 9]

    def test_latency_kind_counts_threshold_breaches(self):
        clock = Clock()
        engine = SLOEngine(clock=clock)
        p99 = [0.1]
        engine.add(SLOSpec("lat", kind="latency", objective=0.5,
                           threshold=0.5,
                           fast=(1.0, 2.0, 1.5), slow=(2.0, 4.0, 1.2)),
                   lambda: p99[0])
        engine.observe()
        clock.now = 1.0
        p99[0] = 2.0  # breach
        engine.observe()
        # window(1s): 1 obs, 1 bad -> fraction 1.0 / budget 0.5 = 2.0
        assert engine.burn_rate("lat", 1.0) == pytest.approx(2.0)
        assert engine.log.active()  # both pairs over their factors

    def test_compliance_report(self):
        clock, engine, source = make_engine()
        source.add(8, bad=2)
        engine.observe()
        report = engine.compliance()["err"]
        assert report["sli"] == pytest.approx(1.0)  # single sample: no delta
        clock.now = 1.0
        source.add(8, bad=2)
        engine.observe()
        report = engine.compliance()["err"]
        assert report["sli"] == pytest.approx(0.8)
        assert not report["compliant"]


class TestAlertLog:
    def test_trim_keeps_active(self):
        log = AlertLog(max_events=2)
        log.fire("a", SEVERITY_PAGE, 1.0, burn_short=1, burn_long=1,
                 windows=(1, 2))
        log.resolve("a", SEVERITY_PAGE, 2.0)
        log.fire("b", SEVERITY_PAGE, 3.0, burn_short=1, burn_long=1,
                 windows=(1, 2))
        log.fire("c", SEVERITY_PAGE, 4.0, burn_short=1, burn_long=1,
                 windows=(1, 2))
        names = [a.slo for a in log.history()]
        assert "a" not in names  # resolved alert trimmed first
        assert set(names) == {"b", "c"}  # active ones never dropped

    def test_resolve_unknown_is_noop(self):
        log = AlertLog()
        assert log.resolve("ghost", SEVERITY_PAGE, 1.0) is None

    def test_to_record_roundtrips_json(self):
        import json
        alert = Alert("a", SEVERITY_PAGE, 1.0, burn_short=2.0,
                      burn_long=1.5, windows=(1.0, 5.0), exemplars=[3])
        record = json.loads(json.dumps(alert.to_record()))
        assert record["slo"] == "a"
        assert record["exemplars"] == [3]


class TestStoreBackedParity:
    """The engine's windows are *queries* over the shared time-series
    store; burn rates and page/ticket decisions must match what the raw
    bucket series hand-compute — and what the private-accumulator tests
    above established."""

    def make_store_engine(self):
        from repro.obs import TimeSeriesRegistry

        clock = Clock()
        ts = TimeSeriesRegistry(clock=clock, bucket_width=0.25)
        engine = SLOEngine(clock=clock, timeseries=ts)
        source = Source()
        spec = SLOSpec("err", objective=0.9,
                       fast=(1.0, 2.0, 5.0), slow=(2.0, 4.0, 2.0))
        engine.add(spec, source)
        return clock, engine, source, ts, spec

    def test_burn_rates_match_hand_computed_bucket_sums(self):
        clock, engine, source, ts, spec = self.make_store_engine()
        for t, good, bad in ((0.0, 10, 0), (1.0, 5, 5), (2.0, 10, 0)):
            clock.now = t
            source.add(good, bad=bad)
            engine.observe()

        def burn_from_buckets(window):
            cutoff = clock.now - window
            total = ts.window_sum("slo.err.total", cutoff)
            bad = ts.window_sum("slo.err.bad", cutoff)
            return (bad / total) / spec.budget if total else 0.0

        for window in (1.0, 2.0, 4.0):
            assert engine.burn_rate("err", window) == burn_from_buckets(window)
        # and the PR 5 hand-computed expectations still hold exactly
        assert engine.burn_rate("err", 1.0) == 0.0
        assert engine.burn_rate("err", 2.0) == pytest.approx(2.5)

    def test_decisions_match_synthetic_bucket_series(self):
        clock, engine, source, ts, spec = self.make_store_engine()
        source.add(10)
        engine.observe()
        clock.now = 1.0
        source.add(0, bad=10)
        engine.observe()

        # hand-evaluate the multi-window rule from the raw bucket dump
        totals = {p["t"]: p["value"]
                  for p in ts.query("slo.err.total", "points")}
        bads = {p["t"]: p["value"]
                for p in ts.query("slo.err.bad", "points")}

        def burn(window):
            total = sum(v for t, v in totals.items()
                        if t > clock.now - window)
            bad = sum(v for t, v in bads.items() if t > clock.now - window)
            return (bad / total) / spec.budget if total else 0.0

        page = (burn(spec.fast[0]) >= spec.fast[2]
                and burn(spec.fast[1]) >= spec.fast[2])
        ticket = (burn(spec.slow[0]) >= spec.slow[2]
                  and burn(spec.slow[1]) >= spec.slow[2])
        assert page and ticket
        assert [(a.slo, a.severity) for a in engine.log.active()] == [
            ("err", SEVERITY_PAGE), ("err", SEVERITY_TICKET)]
        assert engine.log.active()[0].burn_short == pytest.approx(10.0)

    def test_store_backed_engine_matches_private_engine_bitwise(self):
        """Same input stream -> identical burn rates and alert history,
        whether the engine writes to a shared fleet registry or its own
        private one."""
        clock_a, engine_a, source_a = make_engine()
        clock_b, engine_b, source_b, _ts, _spec = self.make_store_engine()
        schedule = [(0.0, 10, 0), (0.5, 3, 1), (1.0, 0, 10), (1.5, 0, 5),
                    (3.0, 100, 0), (4.5, 100, 0), (6.0, 100, 0),
                    (8.0, 100, 0)]
        for t, good, bad in schedule:
            for clock, engine, source in ((clock_a, engine_a, source_a),
                                          (clock_b, engine_b, source_b)):
                clock.now = t
                source.add(good, bad=bad)
                engine.observe()
            for window in (1.0, 2.0, 4.0):
                assert (engine_a.burn_rate("err", window)
                        == engine_b.burn_rate("err", window))
        hist_a = [a.to_record() for a in engine_a.log.history()]
        hist_b = [a.to_record() for a in engine_b.log.history()]
        assert hist_a == hist_b
        assert engine_a.compliance() == engine_b.compliance()
