"""Differential test: the bucketed (calendar) schedule vs a single heap.

The kernel replaces one global ``heapq`` with current-instant buckets plus
a far-future overflow heap.  The ordering contract is that dispatch order
is *identical* to what the single heap would produce: (time, priority,
insertion-seq) — same-tick bursts, far-future outliers, and events that
schedule further events mid-dispatch included.  This property test drives
both schedulers with the same randomized workload and compares the full
dispatch sequences.
"""

from __future__ import annotations

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.kernel import NORMAL, URGENT

#: a workload is a list of root entries; each entry carries the delays /
#: priorities of children it schedules at the moment it fires (so the
#: schedule grows while it is being drained, like real processes do)
_delays = st.sampled_from([0.0, 0.0, 0.0, 0.5, 1.0, 1.0, 2.5, 1e6])
_priorities = st.sampled_from([NORMAL, NORMAL, NORMAL, URGENT])
_child = st.tuples(_delays, _priorities)
_entry = st.tuples(_delays, _priorities, st.lists(_child, max_size=3))
_workload = st.lists(_entry, min_size=1, max_size=30)


class _ReferenceSchedule:
    """The classic single-heap scheduler the kernel used before PR 6."""

    def __init__(self) -> None:
        self.heap: list = []
        self.seq = 0
        self.now = 0.0

    def push(self, delay: float, priority: int, label: object) -> None:
        self.seq += 1
        heapq.heappush(self.heap,
                       (self.now + delay, priority, self.seq, label))

    def drain(self, on_fire) -> list:
        order = []
        while self.heap:
            when, _prio, _seq, label = heapq.heappop(self.heap)
            self.now = when
            order.append((when, label))
            on_fire(self, label)
        return order


def _dispatch_with_simulator(workload, *, stepwise: bool) -> list:
    sim = Simulator()
    order = []

    def fire(label):
        order.append((sim.now, label))
        _idx, children = label
        for cidx, (delay, priority) in enumerate(children):
            sim.schedule_fn(delay, fire, ((_idx, cidx), ()),
                            priority=priority)

    for idx, (delay, priority, children) in enumerate(workload):
        sim.schedule_fn(delay, fire, (idx, tuple(children)),
                        priority=priority)
    if stepwise:
        while sim.peek() != float("inf"):
            sim.step()
    else:
        sim.run()
    return order


def _dispatch_with_reference(workload) -> list:
    ref = _ReferenceSchedule()

    def on_fire(sched, label):
        _idx, children = label
        for cidx, (delay, priority) in enumerate(children):
            sched.push(delay, priority, ((_idx, cidx), ()))

    for idx, (delay, priority, children) in enumerate(workload):
        ref.push(delay, priority, (idx, tuple(children)))
    return ref.drain(on_fire)


@settings(max_examples=200, deadline=None)
@given(_workload)
def test_bucketed_schedule_matches_single_heap_order(workload):
    assert (_dispatch_with_simulator(workload, stepwise=False)
            == _dispatch_with_reference(workload))


@settings(max_examples=100, deadline=None)
@given(_workload)
def test_step_dispatches_in_run_order(workload):
    """step()-ing the whole schedule gives exactly the run() sequence."""
    assert (_dispatch_with_simulator(workload, stepwise=True)
            == _dispatch_with_simulator(workload, stepwise=False))
