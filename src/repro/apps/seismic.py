"""1-D acoustic wave propagation — the seismic-modeling demo application.

Second-order finite-difference acoustic wave equation in a layered medium;
"shots" (sources) are fired by an actuator, and geophone sensors report the
wavefield at receiver positions — the interactive workflow of a seismic
modeling code.
"""

from __future__ import annotations

import numpy as np

from repro.steering import (
    Actuator,
    Sensor,
    SteerableApplication,
    SteerableParameter,
)


class SeismicApp(SteerableApplication):
    """1-D acoustic wave equation with steerable velocity model."""

    def __init__(self, host, name, server_host, *, cells: int = 400,
                 **kwargs) -> None:
        self.cells = cells
        self.u_prev = np.zeros(cells)
        self.u = np.zeros(cells)
        #: two-layer velocity model (units of grid CFL)
        self.velocity = np.full(cells, 0.4)
        self.velocity[cells // 2:] = 0.6
        self.receivers = [cells // 4, cells // 2, 3 * cells // 4]
        self.shot_count = 0
        super().__init__(host, name, server_host, **kwargs)

    def setup(self) -> None:
        self.layer_velocity = self.control.add_parameter(SteerableParameter(
            "layer2_velocity", 0.6, minimum=0.1, maximum=0.9,
            description="velocity of the deeper layer (CFL units)",
            on_change=self._retune_velocity))
        self.damping = self.control.add_parameter(SteerableParameter(
            "damping", 0.001, minimum=0.0, maximum=0.05,
            description="attenuation per step"))
        self.control.add_parameter(SteerableParameter(
            "cells", self.cells, read_only=True))
        self.control.add_sensor(Sensor(
            "geophone_mid", lambda: float(self.u[self.receivers[1]]),
            monitored=True, description="wavefield at the middle receiver"))
        self.control.add_sensor(Sensor(
            "rms_amplitude",
            lambda: float(np.sqrt(np.mean(self.u ** 2))), monitored=True))
        self.control.add_sensor(Sensor(
            "shots_fired", lambda: self.shot_count, monitored=True))
        self.control.add_sensor(Sensor(
            "wavefield", lambda: self.u.copy(),
            description="full wavefield snapshot"))
        self.control.add_actuator(Actuator(
            "fire_shot", self._fire_shot,
            description="inject a Ricker-like source at a position"))

    def _retune_velocity(self, value: float) -> None:
        self.velocity[self.cells // 2:] = value

    def step(self, index: int) -> None:
        c2 = self.velocity ** 2
        lap = np.zeros_like(self.u)
        lap[1:-1] = self.u[2:] - 2.0 * self.u[1:-1] + self.u[:-2]
        u_next = (2.0 * self.u - self.u_prev + c2 * lap)
        u_next *= (1.0 - self.damping.value)
        # rigid boundaries
        u_next[0] = 0.0
        u_next[-1] = 0.0
        self.u_prev, self.u = self.u, u_next

    def _fire_shot(self, position: int = 10, amplitude: float = 1.0) -> dict:
        if not 0 <= position < self.cells:
            raise ValueError(f"shot position {position} out of range")
        self.u[position] += amplitude
        self.shot_count += 1
        return {"shots": self.shot_count, "position": int(position)}
