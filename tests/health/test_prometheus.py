"""Prometheus exposition: generation, strict parsing, round-trips."""

import pytest

from repro.health import parse_prometheus, to_prometheus
from repro.obs import MetricsRegistry, TimeSeriesRegistry


class Source:
    def __init__(self, snap):
        self._snap = snap

    def snapshot(self):
        return self._snap


def make_registry():
    registry = MetricsRegistry()
    registry.register("pipeline[srvA]", Source({
        "requests": 42, "errors": 1,
        "latency": {"p99": 0.25}, "saturated": False,
        "note": "strings are skipped", "history": [1, 2, 3],
    }))
    registry.register("traffic", Source({"wan_messages": 7}))
    return registry


class TestExport:
    def test_families_and_labels(self):
        text = to_prometheus(make_registry())
        samples = parse_prometheus(text)
        assert samples[("repro_pipeline_requests",
                        (("instance", "srvA"),))] == 42.0
        assert samples[("repro_pipeline_latency_p99",
                        (("instance", "srvA"),))] == 0.25
        # booleans become 0/1 gauges; strings and lists are skipped
        assert samples[("repro_pipeline_saturated",
                        (("instance", "srvA"),))] == 0.0
        assert not any("note" in name or "history" in name
                       for name, _labels in samples)
        # unlabelled families work too
        assert samples[("repro_traffic_wan_messages", ())] == 7.0

    def test_type_lines_present_and_sorted(self):
        text = to_prometheus(make_registry())
        lines = text.splitlines()
        type_lines = [l for l in lines if l.startswith("# TYPE")]
        assert type_lines == sorted(type_lines)
        assert all(l.endswith(" gauge") for l in type_lines)

    def test_health_gauges_from_monitor(self):
        class FakeAlerts:
            def snapshot(self):
                return {"fired": 2, "resolved": 1, "active": 1,
                        "deduplicated": 0}

        class FakeMonitor:
            server = type("S", (), {"name": "srvA"})()
            alerts = FakeAlerts()
            counters = {"heartbeats": 10, "failovers": 3}

            def fleet_view(self):
                return {"server:srvA": "healthy", "server:srvB": "unhealthy"}

        text = to_prometheus(make_registry(), monitor=FakeMonitor())
        samples = parse_prometheus(text)
        assert samples[("repro_health_status",
                        (("component", "server:srvA"),
                         ("server", "srvA")))] == 1.0
        assert samples[("repro_health_status",
                        (("component", "server:srvB"),
                         ("server", "srvA")))] == 3.0
        assert samples[("repro_alerts_fired", ())] == 2.0
        assert samples[("repro_health_failovers", ())] == 3.0

    def test_timeseries_histogram_families(self):
        ts = TimeSeriesRegistry(bucket_width=1.0)
        for v in (0.0, 0.010, 0.010, 0.050, 2.0):
            ts.observe("pipeline.latency.http", v)
        ts.inc("pipeline.requests.http", 5)  # counters are not exposed here
        text = to_prometheus(None, timeseries=ts, instance="srvA")
        assert "# TYPE repro_ts_pipeline_latency_http histogram" in text
        samples = parse_prometheus(text)
        base = "repro_ts_pipeline_latency_http"
        inst = ("instance", "srvA")
        assert samples[(f"{base}_count", (inst,))] == 5.0
        assert samples[(f"{base}_sum", (inst,))] == pytest.approx(2.07)
        inf_key = (f"{base}_bucket", (inst, ("le", "+Inf")))
        assert samples[inf_key] == 5.0
        # buckets are cumulative and monotone in le
        buckets = sorted(
            ((dict(labels)["le"], value) for (name, labels), value
             in samples.items() if name == f"{base}_bucket"),
            key=lambda kv: float(kv[0].replace("+Inf", "inf")))
        counts = [v for _, v in buckets]
        assert counts == sorted(counts)
        assert buckets[0] == ("0", 1.0)  # the zero bucket
        # no counter family leaked into the histogram exposition
        assert not any("requests" in name for name, _ in samples)


class TestParser:
    def test_round_trip_is_lossless(self):
        text = to_prometheus(make_registry())
        assert parse_prometheus(text) == parse_prometheus(text)

    def test_invalid_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not prometheus\n")

    def test_invalid_label_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus('metric{bad-label="x"} 1\n')

    def test_duplicate_sample_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("m 1\nm 2\n")

    def test_comments_and_blank_lines_skipped(self):
        samples = parse_prometheus("# HELP m help\n# TYPE m gauge\n\nm 4\n")
        assert samples == {("m", ()): 4.0}


class TestEndToEnd:
    def test_live_deployment_exposition_parses(self):
        from repro.core.deployment import build_single_server
        collab = build_single_server(app_hosts=1, client_hosts=1)
        collab.run_bootstrap()
        collab.sim.run(until=collab.sim.now + 2.0)
        server = collab.server_of(0)
        text = to_prometheus(server.metrics_registry(),
                             monitor=server.health)
        samples = parse_prometheus(text)
        key = ("repro_health_status",
               (("component", f"server:{server.name}"),
                ("server", server.name)))
        assert samples[key] == 1.0  # healthy
        collab.stop()
