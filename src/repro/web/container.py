"""The servlet container: a web server on a simulated host.

Request lifecycle per the paper's commodity web-server tier: accept →
(create or resolve session) → charge the host CPU the HTTP service cost →
run the request pipeline (security / admission / error envelope / metrics
interceptors around longest-prefix servlet routing) → reply to the
caller's endpoint.  Concurrent requests queue on the host CPU, which is
what saturates a server past ~20 polling clients (experiment E2).

Cross-cutting concerns live in :mod:`repro.pipeline` — this module only
routes; it must not import ``repro.core.security`` or
``repro.core.policies`` (CI enforces the boundary).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.net.costs import CostModel
from repro.pipeline.core import PLANE_HTTP, Pipeline, RequestContext
from repro.web.http import NOT_FOUND, HttpRequest
from repro.web.servlet import Servlet
from repro.web.session import SessionManager

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.host import Host

#: conventional HTTP port
DEFAULT_HTTP_PORT = 80


class ServletContainer:
    """A web server hosting mounted servlets."""

    def __init__(self, host: "Host", port: int = DEFAULT_HTTP_PORT,
                 cost_model: Optional[CostModel] = None,
                 session_timeout: float = 1800.0,
                 pipeline: Optional[Pipeline] = None) -> None:
        self.host = host
        self.sim = host.sim
        self.port = port
        self.costs = cost_model or CostModel()
        self.endpoint = host.bind(port)
        self.sessions = SessionManager(timeout=session_timeout)
        if pipeline is None:
            # Late import: repro.pipeline.interceptors imports the core
            # managers, which import this module.
            from repro.pipeline.interceptors import default_pipeline
            pipeline = default_pipeline(PLANE_HTTP,
                                        clock=lambda: self.sim.now)
        #: interceptor chain every request dispatches through
        self.pipeline = pipeline
        self._servlets: Dict[str, Servlet] = {}
        self._acceptor = self.sim.spawn(self._accept_loop(),
                                        name=f"http@{host.name}")
        self._stopped = False
        self._last_sweep = self.sim.now
        #: requests served, for utilisation reports
        self.requests_served = 0
        #: sessions expired by the amortized sweep
        self.sessions_expired = 0

    # -- configuration ---------------------------------------------------
    def mount(self, path: str, servlet: Servlet) -> Servlet:
        """Mount ``servlet`` at ``path`` (longest-prefix routing)."""
        if not path.startswith("/"):
            raise ValueError("mount path must start with '/'")
        if path in self._servlets:
            raise ValueError(f"path {path!r} already mounted")
        servlet.mount_path = path
        self._servlets[path] = servlet
        servlet.init(self)
        return servlet

    def servlet_for(self, path: str) -> Optional[Servlet]:
        """Longest-prefix match over mounted servlets."""
        best = None
        best_len = -1
        for prefix, servlet in self._servlets.items():
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                if len(prefix) > best_len:
                    best, best_len = servlet, len(prefix)
        return best

    def stop(self) -> None:
        """Shut the container down and release the port."""
        if self._stopped:
            return
        self._stopped = True
        if self._acceptor.is_alive:
            self._acceptor.interrupt("container stop")
        self.endpoint.close()

    # -- request handling ---------------------------------------------------
    def _accept_loop(self):
        from repro.sim import Interrupt
        try:
            while True:
                frame = yield self.endpoint.recv()
                if isinstance(frame.payload, HttpRequest):
                    self.sim.spawn(
                        self._handle(frame),
                        name=f"req-{frame.payload.request_id}")
        except Interrupt:
            return

    def _sweep_sessions(self) -> None:
        """Amortized expiry: sweep stale sessions at most every quarter
        timeout, piggybacked on request handling (keeps the event loop
        free of perpetual timers so ``sim.run()`` still terminates)."""
        if self.sim.now - self._last_sweep >= self.sessions.timeout / 4.0:
            self._last_sweep = self.sim.now
            self.sessions_expired += self.sessions.expire_stale(self.sim.now)

    def _handle(self, frame):
        self._sweep_sessions()
        request: HttpRequest = frame.payload
        session = self.sessions.resolve(request.cookie, self.sim.now)
        new_session = session is None
        if new_session:
            session = self.sessions.create(self.sim.now)
        # Accept + servlet-engine dispatch cost on this host's CPU.
        cpu_cost = self.costs.http_cost(frame.size, new_session=new_session)
        yield from self.host.use_cpu(cpu_cost)
        ctx = RequestContext(PLANE_HTTP, request_id=request.request_id,
                             principal=frame.src_host,
                             operation=request.path, size=frame.size,
                             request=request)
        ctx.attrs["trace_parent"] = frame.trace_ctx
        # modeled CPU charged above, reported for cost attribution
        ctx.attrs["cpu_cost"] = cpu_cost

        def route(_ctx):
            servlet = self.servlet_for(request.path)
            if servlet is None:
                return (NOT_FOUND,
                        {"error": f"no servlet at {request.path}"})
            return servlet.service(request, session)

        result = yield from self.pipeline.execute(ctx, route)
        response = Servlet.normalize(request, result)
        if new_session:
            response.set_cookie = session.session_id
        self.requests_served += 1
        self.endpoint.send(frame.src_host, frame.src_port, response,
                           channel="response",
                           trace_ctx=ctx.attrs.get("trace_ctx"))
