"""E13: the kill-and-recover drill observed through the telemetry plane.

Every assertion here reads the *store* (``query()`` output / merged
registries), not live collectors — the point of the experiment is that
post-hoc fleet-wide analysis works.
"""

import random

import pytest

from repro.bench.scenarios import run_telemetry_drill
from repro.obs import TimeSeriesRegistry


@pytest.fixture(scope="module")
def drill():
    row, collab, merged = run_telemetry_drill()
    yield row, collab, merged
    collab.stop()


def test_breach_within_one_bucket_of_kill(drill):
    row, _collab, _merged = drill
    assert row["breach_delay_s"] is not None
    assert abs(row["breach_delay_s"]) <= row["bucket_width_s"]


def test_p99_recovers_within_ten_percent(drill):
    row, _collab, _merged = drill
    assert row["p99_baseline_ms"] > 0
    assert 0.9 <= row["p99_ratio"] <= 1.1


def test_client_survived_the_outage(drill):
    row, _collab, _merged = drill
    assert row["commands_failed"] >= 1  # the kill was visible
    assert row["commands_ok"] > 10 * row["commands_failed"]


def test_merge_is_order_independent(drill):
    """Fleet quantiles are identical whether the per-server registries
    merge in name order, reversed, or shuffled — the exact-merge
    guarantee that makes cross-server aggregation trustworthy."""
    _row, collab, merged = drill
    registries = [s.timeseries for s in collab.servers.values()]
    reordered = list(registries)
    random.Random(3).shuffle(reordered)
    for other in (TimeSeriesRegistry.merged(reversed(registries)),
                  TimeSeriesRegistry.merged(reordered)):
        for name in other.names():
            if other.kind(name) == "histogram":
                a = other.histogram_summary(name)
                b = TimeSeriesRegistry.merged(registries).histogram_summary(
                    name)
                assert a["count"] == b["count"]
                for key in ("p50", "p90", "p99", "max"):
                    assert a[key] == b[key]
            else:
                assert (other.query(name, "sum")
                        == TimeSeriesRegistry.merged(registries).query(
                            name, "sum"))
    # the fleet view retains the dead victim's pre-kill history, so it
    # holds strictly more recorded points than the live servers alone
    live_only = TimeSeriesRegistry.merged(registries)
    assert merged.snapshot()["points"] > live_only.snapshot()["points"]


def test_merged_registry_round_trips(drill):
    _row, _collab, merged = drill
    doc = merged.to_dict()
    reloaded = TimeSeriesRegistry.from_dict(doc)
    assert reloaded.to_dict() == doc
    assert (reloaded.query("pipeline.latency.http", "quantile", q=0.99)
            == merged.query("pipeline.latency.http", "quantile", q=0.99))


def test_drill_is_deterministic(drill):
    row, _collab, _merged = drill
    again, collab2, _merged2 = run_telemetry_drill()
    collab2.stop()
    assert again == row
