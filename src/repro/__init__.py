"""repro — reproduction of the DISCOVER computational-collaboratory
middleware (Mann & Parashar, "Middleware Support for Global Access to
Integrated Computational Collaboratories", HPDC 2001).

Layer map (bottom-up):

- :mod:`repro.sim` — deterministic discrete-event kernel (virtual time).
- :mod:`repro.wire` — serialization + typed messages.
- :mod:`repro.net` — simulated WAN: hosts, links, routing, cost model.
- :mod:`repro.orb` — mini-CORBA: ORB, naming service, trader service.
- :mod:`repro.web` — HTTP + servlet container + polling client.
- :mod:`repro.steering` — application-side control network and lifecycle.
- :mod:`repro.apps` — demonstration scientific applications.
- :mod:`repro.core` — the DISCOVER middleware: servers, proxies, security,
  locking, collaboration, archival, peer-to-peer integration.
- :mod:`repro.client` — the portal API clients drive.
- :mod:`repro.metrics` / :mod:`repro.bench` — measurement + experiments.

Quick start::

    from repro import build_single_server
    from repro.apps import SyntheticApp

    collab = build_single_server()
    collab.run_bootstrap()
    app = collab.add_app(0, SyntheticApp, "demo", acl={"alice": "write"})
    portal = collab.add_portal(0)

    def scenario(sim):
        yield from portal.login("alice")
        session = yield from portal.open(app.app_id)
        yield from session.acquire_lock()
        yield from session.set_param("gain", 2.5)

    collab.sim.run(until=collab.sim.spawn(scenario(collab.sim)))
"""

from repro.client import AppSession, DiscoverPortal, PortalError
from repro.core import DiscoverServer, LockError, SecurityError
from repro.core.deployment import (
    Collaboratory,
    build_collaboratory,
    build_single_server,
)
from repro.net import CostModel, Network, TrafficTrace
from repro.net.costs import LinkSpec
from repro.orb import NamingService, Orb, TraderService
from repro.sim import Simulator
from repro.steering import AppConfig, SteerableApplication

__version__ = "1.0.0"

__all__ = [
    "AppConfig",
    "AppSession",
    "Collaboratory",
    "CostModel",
    "DiscoverPortal",
    "DiscoverServer",
    "LinkSpec",
    "LockError",
    "NamingService",
    "Network",
    "Orb",
    "PortalError",
    "SecurityError",
    "Simulator",
    "SteerableApplication",
    "TraderService",
    "TrafficTrace",
    "build_collaboratory",
    "build_single_server",
    "__version__",
]
